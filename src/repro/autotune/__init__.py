"""Work/data-distribution selection assistance (the paper's future work).

Lightning requires the programmer to choose a data distribution per array and
a superblock distribution per launch; Sec. 6 names "assistance in this
selection (e.g., via profiling) or even automatic selection (i.e., a more
intelligent planner)" as future work.  This package implements both forms of
assistance on top of the reproduction:

* :mod:`repro.autotune.chunk_size` — the analytic chunk-size model behind the
  paper's "~0.5 GB chunks work well" guidance (Sec. 2.2, Fig. 10) and a
  profiling-based autotuner that sweeps candidate chunk sizes on the
  simulated cluster.
* :mod:`repro.autotune.distribution` — a static advisor that reads a kernel's
  data annotation and suggests a data distribution per array (replicated /
  block / row / column / stencil-with-halo) plus an aligned superblock
  distribution, with a human-readable rationale for every choice.
"""

from .chunk_size import ChunkSizeAdvice, ChunkSizeAutotuner, recommend_chunk_bytes
from .distribution import (
    DistributionAdvice,
    suggest_data_distribution,
    suggest_kernel_distributions,
    suggest_work_distribution,
)

__all__ = [
    "ChunkSizeAdvice",
    "ChunkSizeAutotuner",
    "recommend_chunk_bytes",
    "DistributionAdvice",
    "suggest_data_distribution",
    "suggest_work_distribution",
    "suggest_kernel_distributions",
]
