"""Static distribution advisor driven by kernel data annotations.

The annotation of a kernel (Sec. 2.3) states, per thread, which array elements
it touches.  The same information the planner uses to derive access regions is
enough to *suggest* a data distribution per array and an aligned superblock
distribution — the "automatic selection" the paper leaves as future work:

* accesses that do not depend on the thread index at all mean every superblock
  needs the whole array → replicate it when it is small;
* a point access ``A[i]`` / ``A[i, :]`` along one axis means the array can be
  partitioned along that axis so that each superblock finds its data locally;
* a slice access ``A[i-1:i+1]`` means neighbouring superblocks share a border
  → a stencil distribution with a matching halo keeps that border replicated;
* point accesses on two distinct thread axes suggest a 2-d tile distribution.

The advisor is deliberately conservative: whenever a pattern cannot be
classified it falls back to replication (small arrays) or a row partitioning
(large arrays), which is always *correct* — in Lightning distributions only
ever affect performance (Sec. 2.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.annotations import Annotation, ArrayAccess, IndexSpec
from ..core.distributions import (
    BlockDist,
    BlockWorkDist,
    ColumnDist,
    DataDistribution,
    ReplicatedDist,
    RowDist,
    StencilDist,
    TileDist,
    TileWorkDist,
    WorkDistribution,
)
from ..core.kernel import KernelDef
from .chunk_size import recommend_chunk_bytes

__all__ = [
    "DistributionAdvice",
    "suggest_data_distribution",
    "suggest_work_distribution",
    "suggest_kernel_distributions",
]

#: Arrays at or below this size are replicated when every superblock reads them.
DEFAULT_REPLICATION_LIMIT = 64 * 1024 ** 2


@dataclass(frozen=True)
class DistributionAdvice:
    """A suggested distribution together with the reasoning behind it."""

    array: str
    distribution: DataDistribution
    rationale: str
    #: Axis the array is partitioned along (None for replication).
    axis: Optional[int] = None
    #: Halo width for stencil distributions (0 otherwise).
    halo: int = 0


# --------------------------------------------------------------------------- #
# classification of one index expression
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _DimPattern:
    kind: str  # 'full' | 'const' | 'point' | 'halo' | 'other'
    variable: Optional[str] = None
    halo: int = 0


def _classify_dim(spec: IndexSpec, thread_vars: Sequence[str]) -> _DimPattern:
    if spec.is_slice and spec.lower is None and spec.upper is None:
        return _DimPattern("full")
    if not spec.is_slice:
        expr = spec.lower
        variables = [v for v in expr.variables() if v in thread_vars]
        if not variables:
            return _DimPattern("const")
        if len(variables) == 1 and dict(expr.coeffs).get(variables[0]) == 1:
            return _DimPattern("point", variables[0])
        return _DimPattern("other", variables[0])
    # bounded slice: lower and upper are linear expressions (either may be open)
    lower, upper = spec.lower, spec.upper
    lower_vars = [v for v in (lower.variables() if lower else ()) if v in thread_vars]
    upper_vars = [v for v in (upper.variables() if upper else ()) if v in thread_vars]
    if not lower_vars and not upper_vars:
        return _DimPattern("full")
    if (
        lower is not None
        and upper is not None
        and len(lower_vars) == 1
        and lower_vars == upper_vars
        and dict(lower.coeffs).get(lower_vars[0]) == 1
        and dict(upper.coeffs).get(upper_vars[0]) == 1
    ):
        halo = max(-lower.const, upper.const, 0)
        return _DimPattern("halo", lower_vars[0], halo)
    return _DimPattern("other", (lower_vars or upper_vars)[0])


def _thread_variables(annotation: Annotation) -> List[str]:
    for binding in annotation.bindings:
        if binding.space == "global":
            return list(binding.names)
    # block/local-only annotations: treat the first binding as the thread axes
    return list(annotation.bindings[0].names)


def _nbytes(shape: Sequence[int], itemsize: int) -> int:
    total = itemsize
    for extent in shape:
        total *= int(extent)
    return total


# --------------------------------------------------------------------------- #
# per-array suggestion
# --------------------------------------------------------------------------- #
def suggest_data_distribution(
    access: ArrayAccess,
    shape: Sequence[int],
    annotation: Annotation,
    itemsize: int = 4,
    target_chunk_bytes: Optional[int] = None,
    replication_limit: int = DEFAULT_REPLICATION_LIMIT,
    align: int = 1,
) -> DistributionAdvice:
    """Suggest a distribution for one annotated array access.

    ``align`` rounds the per-chunk extent down to a multiple of the launch's
    thread-block size along the partitioned axis, so superblock boundaries can
    coincide with chunk boundaries (misalignment is correct but forces the
    planner to assemble temporary chunks).
    """
    shape = tuple(int(s) for s in shape)
    if target_chunk_bytes is None:
        target_chunk_bytes = recommend_chunk_bytes().recommended_bytes
    thread_vars = _thread_variables(annotation)
    patterns = [_classify_dim(spec, thread_vars) for spec in access.indices]
    total_bytes = _nbytes(shape, itemsize)
    name = access.array

    def _aligned(extent: int) -> int:
        extent = max(1, extent)
        if align > 1 and extent > align:
            extent -= extent % align
        return extent

    def _chunk_extent(axis: int) -> int:
        other = _nbytes(shape, itemsize) // max(shape[axis], 1)
        return _aligned(min(shape[axis], max(1, target_chunk_bytes // max(other, 1))))

    partition_axes = [i for i, p in enumerate(patterns) if p.kind in ("point", "halo")]

    # Nothing depends on the thread index: every superblock reads everything.
    if not partition_axes:
        if total_bytes <= replication_limit:
            return DistributionAdvice(
                name,
                ReplicatedDist(),
                f"{name} is accessed independently of the thread index and is only "
                f"{total_bytes / 1e6:.1f} MB, so replicate it on every GPU",
            )
        axis = 0
        extent = _chunk_extent(axis)
        dist: DataDistribution = (
            BlockDist(extent) if len(shape) == 1 else RowDist(extent)
        )
        return DistributionAdvice(
            name,
            dist,
            f"{name} is accessed independently of the thread index but is too large "
            f"({total_bytes / 1e9:.1f} GB) to replicate; partition it along axis 0 and "
            f"accept broadcast traffic",
            axis=axis,
        )

    axis = partition_axes[0]
    pattern = patterns[axis]
    extent = _chunk_extent(axis)

    if pattern.kind == "halo" and pattern.halo > 0:
        return DistributionAdvice(
            name,
            StencilDist(extent, halo=pattern.halo, axis=axis),
            f"{name}[{access.indices[axis]}] reads a window of +/-{pattern.halo} around the "
            f"thread index along axis {axis}: use a stencil distribution whose replicated "
            f"halo keeps the window local",
            axis=axis,
            halo=pattern.halo,
        )

    if len(shape) == 1:
        return DistributionAdvice(
            name,
            BlockDist(extent),
            f"{name}[{access.indices[0]}] is a per-thread point access: contiguous blocks of "
            f"{extent} elements keep every access local",
            axis=0,
        )

    # 2-d / 3-d arrays
    if len(partition_axes) >= 2 and len(shape) == 2:
        rows = _aligned(max(1, int(math.sqrt(target_chunk_bytes / itemsize))))
        cols = _aligned(max(1, target_chunk_bytes // (rows * itemsize)))
        tile = (min(shape[0], rows), min(shape[1], cols))
        return DistributionAdvice(
            name,
            TileDist(tile),
            f"{name} is indexed point-wise along both axes: tile it into "
            f"{tile[0]}x{tile[1]} chunks",
            axis=None,
        )
    if axis == 0:
        return DistributionAdvice(
            name,
            RowDist(extent),
            f"{name} is indexed by the thread along axis 0 and accessed whole along the other "
            f"axes: partition row-wise with {extent} rows per chunk",
            axis=0,
        )
    if axis == 1 and len(shape) == 2:
        return DistributionAdvice(
            name,
            ColumnDist(extent),
            f"{name} is indexed by the thread along axis 1 only: partition column-wise with "
            f"{extent} columns per chunk",
            axis=1,
        )
    # Partitioning along axis 2 of a 3-d array is not supported by the stock
    # distributions; fall back to rows, which is always correct.
    extent0 = _chunk_extent(0)
    return DistributionAdvice(
        name,
        RowDist(extent0),
        f"{name} is indexed along axis {axis}, which the stock distributions cannot "
        f"partition directly; fall back to a row-wise distribution",
        axis=0,
    )


# --------------------------------------------------------------------------- #
# work-distribution suggestion
# --------------------------------------------------------------------------- #
def suggest_work_distribution(
    advice: Mapping[str, DistributionAdvice],
    annotation: Annotation,
    grid: Sequence[int],
    block: Sequence[int],
    device_count: int,
) -> Tuple[WorkDistribution, str]:
    """Superblock distribution aligned with the suggested data distribution.

    The anchor is the first *written* array that ends up partitioned: its
    chunk extent along the partitioned axis becomes the superblock extent, so
    every superblock's access region falls inside one chunk.  When everything
    is replicated the grid is simply split evenly across the GPUs.
    """
    grid = tuple(int(g) for g in grid)
    block = tuple(int(b) for b in block)
    anchor: Optional[DistributionAdvice] = None
    for access in annotation.accesses:
        if not access.mode.writes:
            continue
        candidate = advice.get(access.array)
        if candidate is not None and candidate.axis is not None:
            anchor = candidate
            break
    if anchor is None:
        for candidate in advice.values():
            if candidate.axis is not None:
                anchor = candidate
                break

    if anchor is None:
        per_device = -(-grid[0] // max(device_count, 1))
        per_device = max(block[0], per_device - per_device % block[0] or block[0])
        return (
            BlockWorkDist(per_device),
            "all arrays are replicated: split the thread grid evenly across the GPUs",
        )

    dist = anchor.distribution
    if isinstance(dist, TileDist) and len(grid) >= 2:
        return (
            TileWorkDist(dist.tile_shape),
            f"superblocks mirror the {dist.tile_shape} tiles of {anchor.array}",
        )
    if isinstance(dist, (BlockDist, StencilDist)):
        extent = dist.chunk_size
    elif isinstance(dist, RowDist):
        extent = dist.rows_per_chunk
    elif isinstance(dist, ColumnDist):
        extent = dist.cols_per_chunk
    else:  # pragma: no cover - defensive fallback
        extent = -(-grid[0] // max(device_count, 1))
    axis = anchor.axis or 0
    axis = min(axis, len(grid) - 1)
    extent = min(extent, grid[axis])
    return (
        BlockWorkDist(extent, axis=axis),
        f"superblocks of {extent} threads along axis {axis} coincide with the chunks of "
        f"{anchor.array}",
    )


# --------------------------------------------------------------------------- #
# whole-kernel convenience entry point
# --------------------------------------------------------------------------- #
def suggest_kernel_distributions(
    kernel: Union[KernelDef, Annotation],
    shapes: Mapping[str, Sequence[int]],
    grid: Sequence[int],
    block: Sequence[int],
    device_count: int,
    itemsizes: Optional[Mapping[str, int]] = None,
    target_chunk_bytes: Optional[int] = None,
    replication_limit: int = DEFAULT_REPLICATION_LIMIT,
) -> Tuple[Dict[str, DistributionAdvice], WorkDistribution, str]:
    """Suggest distributions for every annotated array of a kernel.

    Returns ``(per-array advice, work distribution, work rationale)``.  The
    per-chunk extents are aligned to the launch's thread-block size along the
    partitioned axis.
    """
    if isinstance(kernel, KernelDef):
        if kernel.annotation is None:
            raise ValueError(f"kernel {kernel.name!r} has no annotation to analyse")
        annotation = kernel.annotation
        default_sizes = {p.name: int(np.dtype(p.dtype).itemsize) for p in kernel.array_params}
    else:
        annotation = kernel
        default_sizes = {}
    itemsizes = dict(default_sizes, **(itemsizes or {}))
    block = tuple(int(b) for b in block)

    advice: Dict[str, DistributionAdvice] = {}
    for access in annotation.accesses:
        if access.array not in shapes:
            raise KeyError(f"no shape provided for annotated array {access.array!r}")
        shape = shapes[access.array]
        axis_guess = 0
        align = block[axis_guess] if axis_guess < len(block) else 1
        advice[access.array] = suggest_data_distribution(
            access,
            shape,
            annotation,
            itemsize=itemsizes.get(access.array, 4),
            target_chunk_bytes=target_chunk_bytes,
            replication_limit=replication_limit,
            align=align,
        )
    work, rationale = suggest_work_distribution(advice, annotation, grid, block, device_count)
    return advice, work, rationale
