"""repro — a pure-Python reproduction of *Lightning: Scaling the GPU
Programming Model Beyond a Single GPU* (Heldens et al., IPDPS 2022).

The package provides:

* ``repro.core`` — the Lightning programming model: distributed arrays,
  data annotations, distributed kernel launches and the execution planner;
* ``repro.hardware`` / ``repro.simulator`` / ``repro.perfmodel`` — the
  simulated GPU cluster the runtime executes on;
* ``repro.runtime`` — the driver/worker runtime with scheduling, memory
  management and spilling;
* ``repro.kernels`` — the paper's eight benchmark kernels;
* ``repro.baselines`` — NumPy and single-GPU baselines used by the evaluation;
* ``repro.apps`` — the CGC geospatial co-clustering application;
* ``repro.bench`` — harnesses regenerating every figure of the evaluation.
"""

from .core import (
    AccessMode,
    Annotation,
    AnnotationError,
    ArrayView,
    BlockDist,
    BlockWorkDist,
    ColumnDist,
    CompiledKernel,
    Context,
    CustomDist,
    CustomWorkDist,
    DistributedArray,
    KernelDef,
    LaunchContext,
    Param,
    Region,
    ReplicatedDist,
    RowDist,
    StencilDist,
    TileDist,
    TileWorkDist,
    WeightedBlockWorkDist,
)
from .hardware import ClusterSpec, GPUSpec, NodeSpec, azure_nc24rsv2
from .perfmodel import KernelCost
from .runtime import ExecutionMode, OutOfMemoryError

__version__ = "0.1.0"

__all__ = [
    "AccessMode",
    "Annotation",
    "AnnotationError",
    "ArrayView",
    "BlockDist",
    "BlockWorkDist",
    "ClusterSpec",
    "ColumnDist",
    "CompiledKernel",
    "Context",
    "CustomDist",
    "CustomWorkDist",
    "DistributedArray",
    "ExecutionMode",
    "GPUSpec",
    "KernelCost",
    "KernelDef",
    "LaunchContext",
    "NodeSpec",
    "OutOfMemoryError",
    "Param",
    "Region",
    "ReplicatedDist",
    "RowDist",
    "StencilDist",
    "TileDist",
    "TileWorkDist",
    "WeightedBlockWorkDist",
    "azure_nc24rsv2",
    "__version__",
]
