"""Simulated inter-node communication (Sec. 3.2).

Lightning uses MPI: an RPC protocol on top of MPI for driver↔worker control
messages and non-blocking point-to-point transfers for bulk data between
workers.  This module provides the in-process equivalent: messages between
workers are matched by ``(src, dst, tag)`` exactly like MPI point-to-point
traffic, the bytes occupy the sender's NIC (a shared-bandwidth resource) for
the transfer duration, and receives complete only when both the matching
message has arrived *and* the receive task's dependencies are satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..hardware.topology import WorkerId

__all__ = ["Message", "NetworkFabric", "RpcChannel"]


@dataclass
class Message:
    """One point-to-point message: payload plus matching information."""

    src: WorkerId
    dst: WorkerId
    tag: int
    nbytes: int
    data: Optional[np.ndarray] = None

    @property
    def key(self) -> Tuple[WorkerId, WorkerId, int]:
        """The (src, dst, tag) matching key of this message."""
        return (self.src, self.dst, self.tag)


class NetworkFabric:
    """Matches sends with receives, MPI style.

    The timing of the wire transfer is charged by the sender (on its NIC
    resource) *before* :meth:`deliver` is called, so the fabric itself only
    performs matching and hands the payload to the registered receiver
    callback.
    """

    def __init__(self) -> None:
        self._arrived: Dict[Tuple[WorkerId, WorkerId, int], Message] = {}
        self._waiting: Dict[Tuple[WorkerId, WorkerId, int], Callable[[Message], None]] = {}
        self.messages_delivered = 0
        self.bytes_delivered = 0

    def deliver(self, message: Message) -> None:
        """Called by the sender when the wire transfer completes."""
        key = message.key
        if key in self._arrived:
            raise RuntimeError(f"duplicate message for tag {key}")
        callback = self._waiting.pop(key, None)
        if callback is not None:
            self._complete(message, callback)
        else:
            self._arrived[key] = message

    def expect(
        self,
        src: WorkerId,
        dst: WorkerId,
        tag: int,
        callback: Callable[[Message], None],
    ) -> None:
        """Called by the receiver when its RecvTask is ready to consume data."""
        key = (src, dst, tag)
        message = self._arrived.pop(key, None)
        if message is not None:
            self._complete(message, callback)
        else:
            if key in self._waiting:
                raise RuntimeError(f"duplicate receive posted for tag {key}")
            self._waiting[key] = callback

    def _complete(self, message: Message, callback: Callable[[Message], None]) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += message.nbytes
        callback(message)

    @property
    def outstanding(self) -> int:
        """Messages delivered but not yet consumed plus receives still waiting."""
        return len(self._arrived) + len(self._waiting)


@dataclass
class RpcChannel:
    """Driver → worker control channel.

    Control messages are small, so only their latency matters; the channel
    simply schedules the handler after ``latency`` seconds of virtual time.
    The paper notes the driver runs on the first worker node, so messages to
    worker 0 are free.
    """

    engine: "object"
    latency: float
    control_messages: int = field(default=0)

    def call(self, dst_worker: WorkerId, handler: Callable[[], None]) -> None:
        """Deliver ``handler`` on ``dst_worker`` after the control-message latency."""
        self.control_messages += 1
        delay = 0.0 if dst_worker == 0 else self.latency
        self.engine.schedule(delay, handler)
