"""Per-worker simulated resources.

Each worker node owns the resources the paper's executors map onto:

* one compute engine per GPU (kernel launches, reductions),
* one device-to-device copy engine per GPU (copies inside one GPU),
* one PCIe bus per node, **shared** by all of the node's GPUs — host↔device
  staging transfers and peer-to-peer copies both ride on it,
* one NIC per node for inter-node sends,
* one disk per node for the lowest spill tier,
* a host/CPU executor (chunk fills, downloads), and
* the worker's scheduler control path, which charges a fixed cost per task
  and therefore bounds how many tiny tasks per second one worker can manage
  (the left edge of Fig. 10).
"""

from __future__ import annotations

from typing import Dict

from ..hardware.topology import DeviceId, Node
from ..perfmodel.costs import OverheadModel
from ..simulator.engine import Engine
from ..simulator.resources import (
    BandwidthResource,
    ChannelResource,
    Resource,
    bandwidth_resource_class,
)
from ..simulator.trace import Trace

__all__ = ["WorkerResources"]


class WorkerResources:
    """Bundle of simulated resources belonging to one worker node."""

    def __init__(
        self,
        engine: Engine,
        node: Node,
        overheads: OverheadModel,
        trace: Trace,
    ):
        worker = node.worker
        spec = node.spec
        self.node = node
        prefix = f"w{worker}"
        link_cls = bandwidth_resource_class()

        self.gpu_compute: Dict[DeviceId, ChannelResource] = {}
        self.gpu_dtod: Dict[DeviceId, BandwidthResource] = {}
        for device in node.devices:
            name = f"{prefix}.gpu{device.device_id.local_index}"
            self.gpu_compute[device.device_id] = ChannelResource(
                engine, f"{name}.compute", channels=1, trace=trace
            )
            self.gpu_dtod[device.device_id] = link_cls(
                engine, f"{name}.dtod", bandwidth=device.spec.mem_bandwidth, trace=trace
            )
            self.gpu_compute[device.device_id].fault_role = "compute"
            self.gpu_dtod[device.device_id].fault_role = "transfer"

        self.pcie = link_cls(
            engine,
            f"{prefix}.pcie",
            bandwidth=spec.pcie_bandwidth,
            latency=spec.pcie_latency,
            trace=trace,
        )
        self.nic = link_cls(
            engine,
            f"{prefix}.nic",
            bandwidth=1e9,  # replaced below: interconnect bandwidth comes from the cluster
            trace=trace,
        )
        self.disk = link_cls(
            engine,
            f"{prefix}.disk",
            bandwidth=min(spec.disk.read_bandwidth, spec.disk.write_bandwidth),
            latency=spec.disk.latency,
            trace=trace,
        )
        # Per-direction disk lanes plus host-side (de)compression lanes: used
        # by the compressed disk tier (Context(disk=True)) and by
        # checkpoint/restore, which charge compressed bytes on the asymmetric
        # read/write bandwidths and raw bytes on the codec throughputs.  The
        # default spill path keeps using the symmetric ``disk`` link above, so
        # runs without the disk model are bit-identical with older baselines.
        self.disk_read = link_cls(
            engine,
            f"{prefix}.disk_read",
            bandwidth=spec.disk.read_bandwidth,
            latency=spec.disk.latency,
            trace=trace,
        )
        self.disk_write = link_cls(
            engine,
            f"{prefix}.disk_write",
            bandwidth=spec.disk.write_bandwidth,
            latency=spec.disk.latency,
            trace=trace,
        )
        self.compress = link_cls(
            engine,
            f"{prefix}.compress",
            bandwidth=spec.disk.compress_throughput,
            trace=trace,
        )
        self.decompress = link_cls(
            engine,
            f"{prefix}.decompress",
            bandwidth=spec.disk.decompress_throughput,
            trace=trace,
        )
        # Links that carry chunk data are fault-prone "transfer" resources:
        # the fault injector targets them for transient failures and retries.
        self.pcie.fault_role = "transfer"
        self.nic.fault_role = "transfer"
        self.disk.fault_role = "transfer"
        self.disk_read.fault_role = "transfer"
        self.disk_write.fault_role = "transfer"
        self.cpu = ChannelResource(engine, f"{prefix}.cpu", channels=spec.cpu.cores, trace=trace)
        self.scheduler = ChannelResource(
            engine,
            f"{prefix}.sched",
            channels=1,
            per_item_overhead=overheads.schedule_per_task,
            trace=trace,
        )

    def set_nic_bandwidth(self, bandwidth: float, latency: float) -> None:
        """Configure the NIC from the cluster's interconnect spec."""
        self.nic.bandwidth = bandwidth
        self.nic.latency = latency
        if hasattr(self.nic, "nominal_bandwidth"):
            # keep degradation windows relative to the configured bandwidth
            self.nic.nominal_bandwidth = bandwidth

    def compute_for(self, device: DeviceId) -> ChannelResource:
        """The compute (SM) resource of one local GPU."""
        return self.gpu_compute[device]

    def dtod_for(self, device: DeviceId) -> BandwidthResource:
        """The on-device copy engine resource of one local GPU."""
        return self.gpu_dtod[device]

    def all_resources(self):
        """Every simulated resource of this worker (for stats collection)."""
        resources: list[Resource] = list(self.gpu_compute.values())
        resources += list(self.gpu_dtod.values())
        resources += [self.pcie, self.nic, self.disk, self.disk_read,
                      self.disk_write, self.compress, self.decompress,
                      self.cpu, self.scheduler]
        return resources
