"""Per-worker chunk storage for functional execution.

Workers own the actual bytes of their chunks.  In ``functional`` execution
mode every chunk is backed by a NumPy buffer so kernels compute real results
(used by tests, examples and the correctness checks); in ``simulate`` mode no
buffers exist and only the metadata/bookkeeping paths run, which lets the
benchmark harness sweep the paper's large problem sizes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.chunk import ChunkId, ChunkMeta
from ..core.geometry import Region

__all__ = ["ChunkStorage"]


class ChunkStorage:
    """Maps chunk ids to their metadata and (optionally) NumPy buffers."""

    def __init__(self, materialize: bool = True):
        self.materialize = materialize
        self._meta: Dict[ChunkId, ChunkMeta] = {}
        self._buffers: Dict[ChunkId, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def create(self, chunk: ChunkMeta) -> None:
        """Allocate (functional mode) and register a chunk's buffer."""
        if chunk.chunk_id in self._meta:
            raise ValueError(f"chunk {chunk.chunk_id} already exists on this worker")
        self._meta[chunk.chunk_id] = chunk
        if self.materialize:
            self._buffers[chunk.chunk_id] = np.zeros(chunk.shape, dtype=chunk.dtype)

    def delete(self, chunk_id: ChunkId) -> None:
        """Drop a chunk's buffer and metadata."""
        self._meta.pop(chunk_id, None)
        self._buffers.pop(chunk_id, None)

    def __contains__(self, chunk_id: ChunkId) -> bool:
        return chunk_id in self._meta

    # ------------------------------------------------------------------ #
    # fault recovery helpers
    # ------------------------------------------------------------------ #
    def poison(self, chunk_id: ChunkId) -> None:
        """Overwrite a chunk's buffer with garbage (its device was lost).

        Lineage replay is expected to rewrite the whole buffer; poisoning
        first guarantees that an incomplete replay surfaces as NaNs (or a
        sentinel for integer dtypes) instead of silently stale data.
        """
        if not self.materialize:
            return
        buffer = self._buffers.get(chunk_id)
        if buffer is None:
            return
        if np.issubdtype(buffer.dtype, np.floating) or np.issubdtype(
            buffer.dtype, np.complexfloating
        ):
            buffer.fill(np.nan)
        elif np.issubdtype(buffer.dtype, np.integer):
            buffer.fill(np.iinfo(buffer.dtype).max)

    def replace_meta(self, chunk: ChunkMeta) -> None:
        """Swap a chunk's metadata in place, keeping its buffer (rehoming)."""
        if chunk.chunk_id not in self._meta:
            raise KeyError(f"chunk {chunk.chunk_id} not stored on this worker")
        self._meta[chunk.chunk_id] = chunk

    def adopt(self, chunk: ChunkMeta, buffer: Optional[np.ndarray]) -> None:
        """Register a chunk arriving from another worker (recovery rehoming)."""
        if chunk.chunk_id in self._meta:
            raise ValueError(f"chunk {chunk.chunk_id} already exists on this worker")
        self._meta[chunk.chunk_id] = chunk
        if self.materialize:
            self._buffers[chunk.chunk_id] = (
                buffer if buffer is not None else np.zeros(chunk.shape, dtype=chunk.dtype)
            )

    def meta(self, chunk_id: ChunkId) -> ChunkMeta:
        """The :class:`ChunkMeta` registered for ``chunk_id``."""
        return self._meta[chunk_id]

    def buffer(self, chunk_id: ChunkId) -> Optional[np.ndarray]:
        """The chunk's backing buffer (``None`` in simulate-only mode)."""
        if not self.materialize:
            return None
        return self._buffers[chunk_id]

    # ------------------------------------------------------------------ #
    # data movement helpers (functional mode)
    # ------------------------------------------------------------------ #
    def fill(self, chunk_id: ChunkId, value: Optional[float], data: Optional[np.ndarray]) -> None:
        """Initialise a chunk with a constant or explicit data (functional mode)."""
        if not self.materialize:
            return
        buffer = self._buffers[chunk_id]
        if data is not None:
            buffer[...] = data
        elif value is not None:
            buffer.fill(value)

    def read_region(self, chunk_id: ChunkId, region: Region) -> Optional[np.ndarray]:
        """Copy of ``region`` (global coords) out of a chunk."""
        if not self.materialize:
            return None
        chunk = self._meta[chunk_id]
        if not chunk.region.contains_region(region):
            raise ValueError(f"region {region} outside chunk {chunk}")
        return np.array(self._buffers[chunk_id][region.as_local_slices(chunk.region)])

    def write_region(self, chunk_id: ChunkId, region: Region, data: Optional[np.ndarray]) -> None:
        """Write ``data`` into ``region`` (global coords) of a chunk."""
        if not self.materialize or data is None:
            return
        chunk = self._meta[chunk_id]
        if not chunk.region.contains_region(region):
            raise ValueError(f"region {region} outside chunk {chunk}")
        self._buffers[chunk_id][region.as_local_slices(chunk.region)] = data

    def copy_region(
        self,
        src: ChunkId,
        dst: ChunkId,
        region: Region,
        dst_storage: Optional["ChunkStorage"] = None,
    ) -> None:
        """Copy ``region`` from ``src`` into ``dst`` (possibly on another worker)."""
        dst_storage = dst_storage or self
        data = self.read_region(src, region)
        dst_storage.write_region(dst, region, data)

    def combine_region(self, src: ChunkId, dst: ChunkId, region: Region, combine) -> None:
        """dst[region] = combine(dst[region], src[region]) — used by reductions."""
        if not self.materialize:
            return
        src_meta = self._meta[src]
        dst_meta = self._meta[dst]
        src_view = self._buffers[src][region.as_local_slices(src_meta.region)]
        dst_slices = region.as_local_slices(dst_meta.region)
        dst_buf = self._buffers[dst]
        dst_buf[dst_slices] = combine(dst_buf[dst_slices], src_view)

    @property
    def chunk_count(self) -> int:
        """Number of chunks currently stored."""
        return len(self._meta)

    def total_bytes(self) -> int:
        """Combined nbytes of all stored chunks."""
        return sum(meta.nbytes for meta in self._meta.values())
