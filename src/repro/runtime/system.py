"""The runtime system: driver-side coordination of all workers (Sec. 3.1).

:class:`RuntimeSystem` owns the discrete-event engine, the cluster topology,
the network fabric and one :class:`~repro.runtime.worker.Worker` per node.
The driver (the user's :class:`~repro.core.context.Context`) hands it
execution plans; the runtime charges plan-construction time on the driver's
own resource (so planning overlaps with execution on the workers, as in the
paper), delivers each worker's DAG fragment through the RPC channel, tracks
completion of every task, and advances virtual time until the system is idle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

from ..core.array import ArrayIdAllocator
from ..core.chunk import ChunkIdAllocator
from ..core.tasks import ExecutionPlan, TaskId, TaskIdAllocator
from ..errors import SimulationStalled
from ..hardware.specs import ClusterSpec
from ..hardware.topology import Cluster
from ..perfmodel.costs import DEFAULT_OVERHEADS, OverheadModel
from ..simulator.engine import Engine
from ..simulator.resources import ChannelResource
from ..simulator.trace import Trace
from .memory import MemoryStats, OutOfMemoryError
from .network import NetworkFabric, RpcChannel
from .scheduler import DEFAULT_STAGE_THRESHOLD
from .worker import Worker

__all__ = ["ExecutionMode", "RuntimeSystem", "RuntimeStats", "OutOfMemoryError"]


class ExecutionMode(enum.Enum):
    """How plans are executed.

    * ``FUNCTIONAL`` — chunks are backed by NumPy buffers and kernels really
      compute; used by tests, examples and any run whose results are read back.
    * ``SIMULATE`` — only metadata and the performance model run; used by the
      benchmark harness to sweep the paper's large problem sizes.
    """

    FUNCTIONAL = "functional"
    SIMULATE = "simulate"


@dataclass
class RuntimeStats:
    """Aggregate counters collected after a run."""

    virtual_time: float = 0.0
    tasks_completed: int = 0
    kernel_launches: int = 0
    control_messages: int = 0
    network_bytes: float = 0.0
    network_messages: int = 0
    #: launch *plans* re-stamped from a cached template / planned cold.  A
    #: fused plan covers two launches but counts once (its status reflects
    #: the fusion cache); per-launch lookup counts live on
    #: ``Planner.cache.hits/misses``.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: cache entries evicted by targeted invalidation (redistribute)
    plan_cache_invalidations: int = 0
    #: launch-window activity: drains, launches merged away by the fusion
    #: pass, and next-launch transfers stamped with prefetch priority
    window_flushes: int = 0
    launches_fused: int = 0
    #: launches that joined a fused *chain* of more than two segments (what
    #: pairwise-only fusion could not have merged), the longest chain stamped,
    #: and reduce parameters combined inside fused tasks (reduction tails)
    launches_fused_chain: int = 0
    fused_chain_max_len: int = 0
    reductions_fused: int = 0
    transfers_prefetched: int = 0
    #: drains for which the memory-planning pass emitted a (non-empty) plan
    window_memory_plans: int = 0
    #: window-aware memory planning: spill victims chosen up front by reserve
    #: tasks, spilled chunks pulled back up the hierarchy ahead of use, and
    #: staging transactions that completed instantly because of either
    chunks_preevicted: int = 0
    prefetch_promotions: int = 0
    staging_stalls: int = 0
    staging_stalls_avoided: int = 0
    #: total engine events processed / cancelled-before-firing
    events_processed: int = 0
    events_cancelled: int = 0
    #: fault tolerance (``Context(faults=...)`` / ``--inject-faults``):
    #: injected transient transfer faults, retried and permanently failed
    #: transfers, permanent device failures, chunks lost with a failed GPU,
    #: spilled replicas promoted instead of replayed, lineage tasks replayed,
    #: arrays force-redistributed onto the shrunken topology, and
    #: link-degradation windows applied
    transfer_faults_injected: int = 0
    transfers_retried: int = 0
    transfers_failed_permanently: int = 0
    devices_failed: int = 0
    chunks_lost: int = 0
    replicas_promoted: int = 0
    tasks_replayed: int = 0
    redistributes_forced: int = 0
    link_degradations: int = 0
    #: lazy expression frontend: DAG roots lowered, elementwise nodes merged
    #: into multi-instruction generated kernels, interior temporaries never
    #: materialised (count and the bytes they would have occupied), bytes
    #: actually allocated for expression results, and group outputs written
    #: in place into a dead input buffer instead of a fresh allocation
    exprs_lowered: int = 0
    expr_nodes_fused: int = 0
    temporaries_elided: int = 0
    temporaries_elided_bytes: int = 0
    expr_bytes_allocated: int = 0
    buffers_reused_inplace: int = 0
    #: compressed disk tier (``Context(disk=True)``): disk→host staged
    #: promotions planned by the window (three-level prefetch), and the
    #: compressed bytes the disk tier actually wrote/read (equal to the raw
    #: spill bytes when the compression model is off)
    disk_promotions_staged: int = 0
    disk_stored_bytes_written: int = 0
    disk_stored_bytes_read: int = 0
    #: checkpoint/restore (``Context.checkpoint``/``Context.restore``):
    #: checkpoints written, chunks and raw/stored bytes captured, chunks
    #: restored from a checkpoint file, and lineage replays that loaded a
    #: durable checkpointed chunk instead of recomputing its producers
    checkpoints_written: int = 0
    chunks_checkpointed: int = 0
    checkpoint_bytes_raw: int = 0
    checkpoint_bytes_stored: int = 0
    chunks_restored: int = 0
    durable_chunks_loaded: int = 0
    memory: Dict[int, MemoryStats] = field(default_factory=dict)
    resource_busy: Dict[str, float] = field(default_factory=dict)
    #: engine events consumed per resource (wake-ups + completions)
    resource_events: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-serialisable form (``--stats-json`` and the bench harnesses)."""
        from dataclasses import asdict

        payload = asdict(self)
        # JSON objects need string keys; ``memory`` is keyed by worker id.
        payload["memory"] = {
            str(worker): stats for worker, stats in payload["memory"].items()
        }
        for stats in payload["memory"].values():
            stats["peak_gpu_bytes"] = {
                str(device): peak for device, peak in stats["peak_gpu_bytes"].items()
            }
        return payload


class RuntimeSystem:
    """Driver-side owner of the whole simulated runtime."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        mode: ExecutionMode = ExecutionMode.FUNCTIONAL,
        overheads: OverheadModel = DEFAULT_OVERHEADS,
        stage_threshold: int = DEFAULT_STAGE_THRESHOLD,
        enable_trace: bool = True,
        memory_capacities=None,
        scheduler_policy=None,
        record_plans: bool = False,
    ):
        self.cluster = Cluster(cluster_spec)
        self.mode = mode
        self.overheads = overheads
        self.engine = Engine()
        self.trace = Trace() if enable_trace else None
        self.fabric = NetworkFabric()
        self.rpc = RpcChannel(self.engine, overheads.rpc_latency)
        self.kernel_registry: Dict[str, object] = {}

        #: Shared id allocators.  All contexts attached to this runtime draw
        #: from the same pools, so task/chunk/array ids stay globally unique
        #: even under multi-tenant serving (multiple contexts, one runtime).
        self.task_ids = TaskIdAllocator()
        self.chunk_ids = ChunkIdAllocator()
        self.array_ids = ArrayIdAllocator()
        #: send/recv message tags share one sequence for the same reason:
        #: the fabric keys in-flight messages by (src, dst, tag), and two
        #: tenants' planners must never mint the same tag concurrently
        self.message_tags = TaskIdAllocator()
        #: chunk id -> owning tenant id; shared with every worker's memory
        #: manager so quota accounting and eviction protection can attribute
        #: residency.  Stays empty on the single-tenant path.
        self.chunk_tenants: Dict[int, int] = {}

        #: Planning happens on the driver; one serial resource models it.
        self.driver_plan = ChannelResource(
            self.engine,
            "driver.plan",
            channels=1,
            per_item_overhead=0.0,
            trace=self.trace,
        )

        self.workers: List[Worker] = []
        for node in self.cluster.nodes:
            worker = Worker(
                runtime=self,
                node=node,
                engine=self.engine,
                trace=self.trace,
                fabric=self.fabric,
                kernel_registry=self.kernel_registry,
                overheads=overheads,
                functional=(mode is ExecutionMode.FUNCTIONAL),
                stage_threshold=stage_threshold,
                memory_capacities=memory_capacities,
                scheduler_policy=scheduler_policy,
                chunk_tenants=self.chunk_tenants,
            )
            worker.resources.set_nic_bandwidth(
                cluster_spec.interconnect.bandwidth, cluster_spec.interconnect.latency
            )
            self.workers.append(worker)

        self._finished: Set[TaskId] = set()
        self._subscribers: Dict[TaskId, List[Callable[[], None]]] = {}
        self._outstanding = 0
        self.plans_submitted = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: When ``record_plans`` is set, every submitted plan is kept here so
        #: ``repro.analysis`` can rebuild the full task DAG (Fig. 4) afterwards.
        self.record_plans = record_plans
        self.recorded_plans: List[ExecutionPlan] = []
        #: Fault tolerance (``Context(faults=...)``): the seeded injector, the
        #: lineage tracker observing every submitted plan, and the recovery
        #: callback invoked per failed device at the next quiescent point.
        #: All three stay ``None`` in fault-free runs.
        self.fault_injector = None
        self.lineage = None
        self.recovery_handler: Callable = None
        #: recovery counters aggregated into :class:`RuntimeStats`
        self.devices_failed = 0
        self.chunks_lost = 0
        self.replicas_promoted = 0
        self.tasks_replayed = 0
        self.redistributes_forced = 0
        #: Compressed disk tier: the per-chunk compression model shared by
        #: every worker's memory manager (``None`` = legacy symmetric disk
        #: link, bit-identical with pre-disk-tier baselines).
        self.disk_model = None
        #: checkpoint/restore counters aggregated into :class:`RuntimeStats`
        self.checkpoints_written = 0
        self.chunks_checkpointed = 0
        self.checkpoint_bytes_raw = 0
        self.checkpoint_bytes_stored = 0
        self.chunks_restored = 0
        #: Multi-tenant serving (:mod:`repro.runtime.serving`).  All of this
        #: is dormant — and the hot path pays a single ``if`` — until the
        #: first tenant-tagged plan arrives.  ``fair_share`` is set by the
        #: serving layer to its :class:`~repro.runtime.serving.FairShareClock`
        #: so the ``fairshare`` scheduling policy can consult it.
        self._tenancy = False
        self._task_tenant: Dict[TaskId, int] = {}
        self._tenant_outstanding: Dict[int, int] = {}
        self.tenant_tasks_submitted: Dict[int, int] = {}
        self.tenant_tasks_completed: Dict[int, int] = {}
        self.tenant_plans_submitted: Dict[int, int] = {}
        self.fair_share = None
        #: fired with the tenant id whenever a tenant's outstanding-task
        #: count drops to zero (the serving loop uses it to detect job
        #: completion without polling)
        self.on_tenant_idle: Callable = None

    # ------------------------------------------------------------------ #
    # completion tracking (shared by all schedulers)
    # ------------------------------------------------------------------ #
    def is_finished(self, task_id: TaskId) -> bool:
        """True when the task id has completed."""
        return task_id in self._finished

    def subscribe(self, task_id: TaskId, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once ``task_id`` completes (immediately if it has)."""
        if task_id in self._finished:
            callback()
            return
        subscribers = self._subscribers.get(task_id)
        if subscribers is None:
            self._subscribers[task_id] = [callback]
        else:
            subscribers.append(callback)

    def notify_completion(self, task_id: TaskId) -> None:
        """Mark a task finished and fire its subscribers (schedulers call this)."""
        if task_id in self._finished:
            raise RuntimeError(f"task {task_id} completed twice")
        self._finished.add(task_id)
        self._outstanding -= 1
        callbacks = self._subscribers.pop(task_id, None)
        if callbacks is not None:
            for callback in callbacks:
                callback()
        if self._tenancy:
            tenant = self._task_tenant.pop(task_id, None)
            if tenant is not None:
                self.tenant_tasks_completed[tenant] = (
                    self.tenant_tasks_completed.get(tenant, 0) + 1
                )
                remaining = self._tenant_outstanding[tenant] - 1
                self._tenant_outstanding[tenant] = remaining
                if remaining == 0 and self.on_tenant_idle is not None:
                    self.on_tenant_idle(tenant)

    @property
    def outstanding_tasks(self) -> int:
        """Submitted tasks that have not completed yet."""
        return self._outstanding

    # ------------------------------------------------------------------ #
    # plan submission
    # ------------------------------------------------------------------ #
    def submit_plan(self, plan: ExecutionPlan) -> None:
        """Charge planning time, then deliver each worker's DAG fragment via RPC.

        Submission is asynchronous with respect to execution: the driver keeps
        planning the next launch while workers execute earlier ones, exactly
        the overlap the paper exploits (Sec. 2.4).
        """
        plan.validate()
        if self.lineage is not None:
            self.lineage.observe_plan(plan)
        self.plans_submitted += 1
        if plan.cache_status == "hit":
            self.plan_cache_hits += 1
        elif plan.cache_status == "miss":
            self.plan_cache_misses += 1
        if self.record_plans:
            self.recorded_plans.append(plan)
        self._outstanding += plan.task_count
        if plan.tenant is not None:
            self._tenancy = True
            tenant = plan.tenant
            self.tenant_plans_submitted[tenant] = (
                self.tenant_plans_submitted.get(tenant, 0) + 1
            )
            self.tenant_tasks_submitted[tenant] = (
                self.tenant_tasks_submitted.get(tenant, 0) + plan.task_count
            )
            self._tenant_outstanding[tenant] = (
                self._tenant_outstanding.get(tenant, 0) + plan.task_count
            )
            for task in plan.all_tasks():
                self._task_tenant[task.task_id] = tenant
        # Re-stamping a cached plan template is much cheaper for the driver
        # than planning from scratch (the analysis passes are skipped).
        per_task = (
            self.overheads.restamp_per_task
            if plan.from_cache
            else self.overheads.plan_per_task
        )
        planning_time = per_task * plan.task_count

        def _deliver() -> None:
            for worker_id, tasks in plan.tasks_by_worker.items():
                worker = self.workers[worker_id]
                self.rpc.call(worker_id, lambda w=worker, t=tasks: w.submit(t))

        self.driver_plan.request(planning_time, _deliver, label=plan.description or "plan")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_until_idle(self) -> float:
        """Advance virtual time until every submitted task has completed.

        Device failures marked by the fault injector are recovered *at the
        quiescent point*: in-flight work drains to completion first, then the
        recovery handler (lineage replay + rehoming + forced redistribution,
        see :mod:`repro.runtime.recovery`) runs per failed device, and the
        loop resumes to drain the recovery's own plans.

        Raises :class:`~repro.errors.SimulationStalled` when the event queue
        drains while tasks are still outstanding (a latent deadlock),
        listing the stuck tasks and the resources they wait on.
        """
        while True:
            self.engine.run()
            injector = self.fault_injector
            if (
                injector is not None
                and injector.pending_failures
                and self.recovery_handler is not None
            ):
                for device in injector.take_pending_failures():
                    self.recovery_handler(device)
                continue
            if self._outstanding > 0:
                details = "\n".join(
                    w.scheduler.describe_stuck() for w in self.workers
                )
                raise SimulationStalled(
                    f"simulation stalled: the event queue drained with "
                    f"{self._outstanding} tasks still outstanding (latent "
                    f"deadlock)\n{details}"
                )
            return self.engine.now

    @property
    def virtual_time(self) -> float:
        """Current simulated time in seconds."""
        return self.engine.now

    # ------------------------------------------------------------------ #
    # compressed disk tier
    # ------------------------------------------------------------------ #
    def enable_disk_model(self, model) -> None:
        """Switch every worker's disk tier to the compressed model.

        ``model`` is a :class:`~repro.perfmodel.compression.CompressionModel`
        (deterministic per-chunk ratios).  Must be called before any chunk is
        spilled: flipping the model mid-run would let a chunk be written at
        one size and read back at another.
        """
        self.disk_model = model
        for worker in self.workers:
            worker.memory.disk_model = model

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> RuntimeStats:
        """Aggregate :class:`RuntimeStats` over the engine, workers and fabric."""
        stats = RuntimeStats(virtual_time=self.engine.now)
        stats.control_messages = self.rpc.control_messages
        stats.plan_cache_hits = self.plan_cache_hits
        stats.plan_cache_misses = self.plan_cache_misses
        stats.network_bytes = self.fabric.bytes_delivered
        stats.network_messages = self.fabric.messages_delivered
        stats.events_processed = self.engine.events_processed
        stats.events_cancelled = self.engine.events_cancelled
        if self.fault_injector is not None:
            injector = self.fault_injector
            stats.transfer_faults_injected = injector.transfer_faults_injected
            stats.transfers_retried = injector.transfers_retried
            stats.transfers_failed_permanently = injector.transfers_failed_permanently
            stats.link_degradations = injector.degradations_applied
        stats.devices_failed = self.devices_failed
        stats.chunks_lost = self.chunks_lost
        stats.replicas_promoted = self.replicas_promoted
        stats.tasks_replayed = self.tasks_replayed
        stats.redistributes_forced = self.redistributes_forced
        stats.checkpoints_written = self.checkpoints_written
        stats.chunks_checkpointed = self.chunks_checkpointed
        stats.checkpoint_bytes_raw = self.checkpoint_bytes_raw
        stats.checkpoint_bytes_stored = self.checkpoint_bytes_stored
        stats.chunks_restored = self.chunks_restored
        if self.lineage is not None:
            stats.durable_chunks_loaded = self.lineage.durable_chunks_loaded
        stats.resource_events[self.driver_plan.name] = self.driver_plan.events_processed
        for worker in self.workers:
            stats.tasks_completed += worker.scheduler.tasks_completed
            stats.kernel_launches += worker.executor.kernel_launches
            stats.memory[worker.worker_id] = worker.memory.stats
            stats.chunks_preevicted += worker.memory.stats.chunks_preevicted
            stats.prefetch_promotions += worker.memory.stats.prefetch_promotions
            stats.staging_stalls += worker.memory.stats.staging_stalls
            stats.staging_stalls_avoided += worker.memory.stats.staging_stalls_avoided
            stats.disk_stored_bytes_written += worker.memory.stats.disk_stored_bytes_written
            stats.disk_stored_bytes_read += worker.memory.stats.disk_stored_bytes_read
            for resource in worker.resources.all_resources():
                stats.resource_events[resource.name] = resource.events_processed
        if self.trace is not None:
            stats.resource_busy = self.trace.summary()
        return stats

    def register_kernel(self, name: str, kernel: object) -> None:
        """Register a compiled kernel under its name for every worker."""
        if name in self.kernel_registry:
            raise ValueError(f"kernel {name!r} already registered")
        self.kernel_registry[name] = kernel

    # ------------------------------------------------------------------ #
    # multi-tenant serving (see repro.runtime.serving)
    # ------------------------------------------------------------------ #
    def tenant_outstanding(self, tenant: int) -> int:
        """Submitted-but-unfinished task count for one tenant."""
        return self._tenant_outstanding.get(tenant, 0)

    def set_tenant_quota(self, tenant: int, fraction: float) -> None:
        """Cap ``tenant`` at ``fraction`` of every memory space's capacity.

        The quota is *soft* (work-conserving): a tenant may exceed it while
        capacity is idle, but its overage above the quota is fair game for
        eviction when another tenant needs room — and a tenant within its
        quota can never have its working set evicted by a rival's pressure.
        """
        for worker in self.workers:
            worker.memory.set_tenant_quota(tenant, fraction)

    def tenant_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-tenant counters (kept out of :class:`RuntimeStats`, whose dict
        form is compared exactly against committed single-tenant baselines)."""
        tenants = sorted(
            set(self.tenant_plans_submitted) | set(self.tenant_tasks_submitted)
        )
        return {
            tenant: {
                "plans_submitted": self.tenant_plans_submitted.get(tenant, 0),
                "tasks_submitted": self.tenant_tasks_submitted.get(tenant, 0),
                "tasks_completed": self.tenant_tasks_completed.get(tenant, 0),
                "outstanding": self._tenant_outstanding.get(tenant, 0),
            }
            for tenant in tenants
        }
