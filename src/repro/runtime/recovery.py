"""Lineage-based recovery from permanent device failures.

When a GPU fails permanently, every chunk that was *resident only* in its
memory is gone.  Rather than checkpointing (which would cost bandwidth on
every iteration), the runtime records each chunk's **lineage**: which task
produced which version of which chunk, and which chunk versions that task
read.  On failure, the minimal producer subgraph of the lost chunks is
replayed on the host against surviving data — chunks whose bytes still exist
(spilled replicas, chunks on healthy devices) are leaves of the replay and are
promoted instead of recomputed.

The tracker observes every :class:`~repro.core.tasks.ExecutionPlan` the
driver submits (see :meth:`~repro.runtime.system.RuntimeSystem.submit_plan`).
Task ids are allocated in program order and every dependency edge points
backwards, so walking a plan's tasks in task-id order is a valid
topological order — both for building the version history and for replay.

Costs of this scheme, by design:

* lineage records hold references to their tasks, so kernel arguments and
  fill payloads (the program's *inputs*) stay reachable for the lifetime of
  the context — inputs must be durable for lineage recovery to be possible;
* replay is functional-mode only (it needs real buffers); in simulate mode
  recovery still rehomes chunks and charges costs but cannot rebuild bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import tasks as T
from ..core.chunk import ChunkId, ChunkMeta
from ..core.reductions import get_reduce_op
from ..core.types import ArrayView, LaunchContext
from ..errors import FaultError

__all__ = ["LineageTracker"]


@dataclass
class _LineageRecord:
    """One producing task in the lineage graph.

    ``reads`` are the *external* chunk versions the task consumed (a fused
    task's internal producer→consumer edges are not listed — the record
    rebuilds them itself when replayed).  ``writes`` maps every chunk the
    task wrote to the version it left behind.  ``recv_src`` resolves a recv
    task's matched send source (chunk id of the sender's data).
    """

    task_id: int
    task: object
    reads: List[Tuple[ChunkId, int]] = field(default_factory=list)
    writes: Dict[ChunkId, int] = field(default_factory=dict)
    recv_src: Optional[ChunkId] = None


class LineageTracker:
    """Records chunk version history and replays lost chunks' producers."""

    def __init__(self) -> None:
        #: current version of every chunk ever created (0 = fresh zeros)
        self._version: Dict[ChunkId, int] = {}
        #: metadata of every chunk ever created (kept past deletion so old
        #: versions can still be replayed as intermediates)
        self._meta: Dict[ChunkId, ChunkMeta] = {}
        #: (chunk id, version) -> the record that produced that version
        self._producer: Dict[Tuple[ChunkId, int], _LineageRecord] = {}
        #: chunks not yet deleted — only these can serve as replay leaves
        self._live: set = set()
        #: send tag -> (src chunk, version read) for recv matching; sends
        #: always precede their recv in task-id order in this codebase
        self._send_by_tag: Dict[int, Tuple[ChunkId, int]] = {}
        self.records_observed = 0
        #: (chunk id, version) -> zero-argument loader returning the chunk's
        #: bytes from durable storage.  ``Context.checkpoint`` registers one
        #: per captured chunk: a checkpointed version is a replay *leaf* —
        #: recovery reloads it from the checkpoint file instead of replaying
        #: its producers, so only non-checkpointed lineage is recomputed.
        self._durable: Dict[Tuple[ChunkId, int], object] = {}
        #: replay leaves satisfied from a checkpoint instead of recompute
        self.durable_chunks_loaded = 0

    # ------------------------------------------------------------------ #
    # observation (driver-side, every submitted plan)
    # ------------------------------------------------------------------ #
    def observe_plan(self, plan: T.ExecutionPlan) -> None:
        """Fold one execution plan into the lineage graph."""
        for task in sorted(plan.all_tasks(), key=lambda t: t.task_id):
            self._observe_task(task)

    def note_rehome(self, meta: ChunkMeta) -> None:
        """Track a chunk's new metadata after recovery retargeted its home."""
        self._meta[meta.chunk_id] = meta

    def note_durable(self, chunk_id: ChunkId, loader) -> None:
        """Mark the chunk's *current* version as durably checkpointed.

        ``loader()`` must return the chunk's bytes as a NumPy array (the
        checkpoint module reads and decompresses them from the file on
        demand).  A later write to the chunk bumps its version, so the
        durable mark pins exactly the version that was captured.
        """
        version = self._version.get(chunk_id)
        if version is None:
            return
        self._durable[(chunk_id, version)] = loader

    def chunk_version(self, chunk_id: ChunkId) -> int:
        """Current version of a chunk (0 = created, never written)."""
        return self._version[chunk_id]

    def _observe_task(self, task: T.Task) -> None:
        kind = task.kind
        if kind == "createchunk":
            chunk = task.chunk
            record = _LineageRecord(task_id=task.task_id, task=task)
            record.writes[chunk.chunk_id] = 0
            self._version[chunk.chunk_id] = 0
            self._meta[chunk.chunk_id] = chunk
            self._producer[(chunk.chunk_id, 0)] = record
            self._live.add(chunk.chunk_id)
            self.records_observed += 1
            return
        if kind == "deletechunk":
            # Keep meta/versions: deleted chunks can still be replay
            # intermediates; they just cannot be leaves any more.
            self._live.discard(task.chunk_id)
            return
        if kind in (
            "download", "combine", "memoryreserve", "memoryrelease", "promotechunk",
        ):
            return

        record = _LineageRecord(task_id=task.task_id, task=task)
        internal: set = set()

        def read(chunk_id: ChunkId) -> None:
            if chunk_id not in internal:
                record.reads.append((chunk_id, self._version[chunk_id]))

        def write(chunk_id: ChunkId, full: bool) -> None:
            # A partial (or read-modify-write) update consumes the previous
            # version as an implicit input.
            if not full:
                read(chunk_id)
            version = self._version[chunk_id] + 1
            self._version[chunk_id] = version
            self._producer[(chunk_id, version)] = record
            record.writes[chunk_id] = version
            internal.add(chunk_id)

        if kind == "fill":
            write(task.chunk_id, full=True)
        elif kind == "launch":
            self._observe_bindings(
                task.array_args, read, write
            )
        elif kind == "fusedlaunch":
            for segment in range(task.segment_count):
                self._observe_bindings(
                    task.array_args_list[segment], read, write
                )
                if task.reduce_epilogues:
                    for epilogue in task.reduce_epilogues[segment]:
                        read(epilogue.src_chunk)
                        write(epilogue.dst_chunk, full=False)
        elif kind == "copy":
            read(task.src_chunk)
            full = task.region.contains_region(self._meta[task.dst_chunk].region)
            write(task.dst_chunk, full=full)
        elif kind == "send":
            read(task.chunk_id)
            self._send_by_tag[task.tag] = (task.chunk_id, self._version[task.chunk_id])
        elif kind == "recv":
            matched = self._send_by_tag.pop(task.tag, None)
            if matched is None:
                raise FaultError(
                    f"lineage: recv tag {task.tag} has no matching send"
                )
            src_chunk, src_version = matched
            record.reads.append((src_chunk, src_version))
            record.recv_src = src_chunk
            full = task.region.contains_region(self._meta[task.chunk_id].region)
            write(task.chunk_id, full=full)
        elif kind == "reduce":
            read(task.src_chunk)
            write(task.dst_chunk, full=False)
        else:
            return
        if record.writes or record.reads:
            self.records_observed += 1

    def _observe_bindings(self, bindings, read, write) -> None:
        """Version accounting for one (fused-)launch segment's bindings."""
        for binding in bindings:
            if binding.mode == "read":
                read(binding.chunk_id)
        for binding in bindings:
            if binding.mode == "read":
                continue
            meta = self._meta[binding.chunk_id]
            full = (
                binding.mode == "write"
                and binding.access_region.contains_region(meta.region)
            )
            write(binding.chunk_id, full=full)

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(
        self,
        lost: List[ChunkId],
        buffer_of,
        kernel_registry: Dict[str, object],
    ) -> int:
        """Rebuild the contents of ``lost`` chunks from surviving data.

        ``buffer_of(chunk_id)`` must return the live NumPy buffer of a chunk
        (on whichever worker holds it) or ``None`` in simulate mode.  The
        minimal producer closure of the lost chunks' final versions is
        computed backwards, then executed forwards in task-id order against
        host scratch buffers; finally each lost chunk's (poisoned) storage
        buffer is overwritten with the replayed bytes.

        Returns the number of lineage records replayed.
        """
        lost_set = set(lost)

        def is_leaf(chunk_id: ChunkId, version: int) -> bool:
            return (
                chunk_id in self._live
                and chunk_id not in lost_set
                and self._version[chunk_id] == version
            )

        # Backward closure from the lost chunks' final versions.
        needed: List[Tuple[ChunkId, int]] = [
            (chunk_id, self._version[chunk_id])
            for chunk_id in lost
            if chunk_id in self._version
        ]
        records: Dict[int, _LineageRecord] = {}
        seen: set = set()
        while needed:
            chunk_id, version = needed.pop()
            if (chunk_id, version) in seen:
                continue
            seen.add((chunk_id, version))
            if is_leaf(chunk_id, version):
                continue
            if (chunk_id, version) in self._durable:
                continue  # checkpointed: reload from the file, don't recompute
            record = self._producer.get((chunk_id, version))
            if record is None:
                raise FaultError(
                    f"lineage: no producer recorded for chunk {chunk_id} "
                    f"version {version}; cannot recover"
                )
            if record.task_id not in records:
                records[record.task_id] = record
                needed.extend(record.reads)

        # Forward pass.  One mutable scratch buffer per chunk suffices:
        # task-id order is topological and the planner's conflict edges
        # guarantee every reader of version v precedes the writer of v+1.
        scratch: Dict[ChunkId, np.ndarray] = {}
        scratch_version: Dict[ChunkId, int] = {}

        def ensure(chunk_id: ChunkId, version: int) -> None:
            if scratch_version.get(chunk_id) == version:
                return
            if is_leaf(chunk_id, version):
                buffer = buffer_of(chunk_id)
                if buffer is None:
                    raise FaultError(
                        f"lineage: no buffer for surviving chunk {chunk_id}"
                    )
                scratch[chunk_id] = np.array(buffer)
                scratch_version[chunk_id] = version
                return
            loader = self._durable.get((chunk_id, version))
            if loader is not None:
                scratch[chunk_id] = np.asarray(loader())
                scratch_version[chunk_id] = version
                self.durable_chunks_loaded += 1
                return
            raise FaultError(
                f"lineage: chunk {chunk_id} version {version} neither "
                f"survived nor was replayed"
            )

        for record in sorted(records.values(), key=lambda r: r.task_id):
            for chunk_id, version in record.reads:
                ensure(chunk_id, version)
            for chunk_id in record.writes:
                if chunk_id not in scratch:
                    meta = self._meta[chunk_id]
                    scratch[chunk_id] = np.zeros(meta.shape, dtype=meta.dtype)
            self._apply(record, scratch, kernel_registry)
            for chunk_id, version in record.writes.items():
                scratch_version[chunk_id] = version

        for chunk_id in lost:
            if chunk_id not in self._version:
                continue
            # A lost chunk whose final version was checkpointed has no replay
            # record at all — ensure() loads it from the durable store here.
            ensure(chunk_id, self._version[chunk_id])
            buffer = buffer_of(chunk_id)
            if buffer is not None:
                np.copyto(buffer, scratch[chunk_id])
        return len(records)

    # ------------------------------------------------------------------ #
    # record effects (mirror TaskExecutor's functional payloads)
    # ------------------------------------------------------------------ #
    def _apply(self, record: _LineageRecord, scratch, kernel_registry) -> None:
        task = record.task
        kind = task.kind
        if kind == "createchunk":
            scratch[task.chunk.chunk_id][...] = 0
        elif kind == "fill":
            buffer = scratch[task.chunk_id]
            if task.data is not None:
                buffer[...] = task.data
            elif task.value is not None:
                buffer.fill(task.value)
        elif kind == "launch":
            self._apply_segment(
                kernel_registry[task.kernel_name],
                scratch,
                array_args=task.array_args,
                array_shapes=task.array_shapes,
                scalar_args=task.scalar_args,
                grid_dims=task.grid_dims,
                block_dims=task.block_dims,
                superblock=task.superblock,
                device=task.device,
            )
        elif kind == "fusedlaunch":
            for segment in range(task.segment_count):
                self._apply_segment(
                    kernel_registry[task.kernel_names[segment]],
                    scratch,
                    array_args=task.array_args_list[segment],
                    array_shapes=task.array_shapes_list[segment],
                    scalar_args=task.scalar_args_list[segment],
                    grid_dims=task.grid_dims_list[segment],
                    block_dims=task.block_dims_list[segment],
                    superblock=task.segment_superblock(segment),
                    device=task.device,
                )
                if task.reduce_epilogues:
                    for epilogue in task.reduce_epilogues[segment]:
                        self._combine(
                            scratch, epilogue.src_chunk, epilogue.dst_chunk,
                            epilogue.region, epilogue.op,
                        )
        elif kind == "copy":
            self._copy(scratch, task.src_chunk, task.dst_chunk, task.region)
        elif kind == "recv":
            self._copy(scratch, record.recv_src, task.chunk_id, task.region)
        elif kind == "reduce":
            self._combine(
                scratch, task.src_chunk, task.dst_chunk, task.region, task.op
            )
        else:  # pragma: no cover - observation never records other kinds
            raise FaultError(f"lineage: cannot replay task kind {kind!r}")

    def _apply_segment(
        self, kernel, scratch, *, array_args, array_shapes, scalar_args,
        grid_dims, block_dims, superblock, device,
    ) -> None:
        views: Dict[str, ArrayView] = {}
        for binding in array_args:
            meta = self._meta[binding.chunk_id]
            views[binding.param] = ArrayView(
                scratch[binding.chunk_id],
                meta.region,
                array_shapes[binding.param],
                access_region=binding.access_region,
                writable=binding.mode in ("write", "readwrite", "reduce"),
                name=binding.param,
            )
        launch_ctx = LaunchContext(
            grid_dims=grid_dims,
            block_dims=block_dims,
            thread_region=superblock.thread_region,
            block_offset=superblock.block_offset,
            superblock_index=superblock.index,
            device_name=str(device),
        )
        kernel.run_superblock(launch_ctx, scalar_args, views)

    def _copy(self, scratch, src: ChunkId, dst: ChunkId, region) -> None:
        src_meta = self._meta[src]
        dst_meta = self._meta[dst]
        scratch[dst][region.as_local_slices(dst_meta.region)] = scratch[src][
            region.as_local_slices(src_meta.region)
        ]

    def _combine(self, scratch, src: ChunkId, dst: ChunkId, region, op: str) -> None:
        combine = get_reduce_op(op).combine
        src_view = scratch[src][region.as_local_slices(self._meta[src].region)]
        dst_slices = region.as_local_slices(self._meta[dst].region)
        dst_buf = scratch[dst]
        dst_buf[dst_slices] = combine(dst_buf[dst_slices], src_view)
