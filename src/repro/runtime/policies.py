"""Pluggable task-selection policies for the per-worker scheduler.

The paper's scheduler "selects one arbitrary task" when several tasks are
ready at the same time and names smarter selection (data locality, task
priority) as future work (Sec. 3.3).  This module implements that future work
as a small policy interface: whenever the scheduler has to pick the next task
to stage from a backlog (tasks held back by the staging throttle), it asks the
policy which one to take.

Policies only *reorder* work that is already runnable; they never violate the
DAG dependencies (those are enforced before a task ever reaches a policy) and
therefore cannot affect correctness — only performance, exactly like the
work/data distributions themselves.

Available policies
------------------

``fifo``
    Arrival order.  This reproduces the paper's baseline behaviour ("selects
    one arbitrary task"): the backlog is drained in the order tasks became
    ready.

``locality``
    Prefer the task whose staged working set needs the fewest bytes moved
    (chunks already resident in the right memory space are free).  Ties fall
    back to arrival order.

``priority``
    Prefer tasks from older kernel launches first and, within one launch,
    communication tasks (send/recv/copy/reduce) before kernel launches, so
    data for the *next* launch is already moving while the current one
    computes.

``smallest``
    Prefer the task with the smallest total staged footprint, which maximises
    the number of concurrently staged tasks under the throttle.

``fairshare``
    Multi-tenant serving: prefer the task whose tenant has the smallest
    weighted virtual finish tag on the serving system's fair-share clock
    (see :mod:`repro.runtime.serving`), so a worker's backlog drains in
    cross-tenant WFQ order.  Behaves like ``fifo`` when no serving layer
    is attached.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple, Type

from ..core import tasks as T

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "LocalityPolicy",
    "PriorityPolicy",
    "SmallestFirstPolicy",
    "FairSharePolicy",
    "POLICIES",
    "get_policy",
]


class SchedulingPolicy(abc.ABC):
    """Strategy deciding which backlogged task the scheduler stages next."""

    #: Registry key; subclasses must override.
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Return the index into ``backlog`` of the task to try next.

        ``backlog`` is never empty.  ``scheduler`` is the calling
        :class:`~repro.runtime.scheduler.Scheduler`; policies may consult its
        memory manager but must not mutate any state.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FifoPolicy(SchedulingPolicy):
    """Arrival order — the paper's baseline 'arbitrary' selection."""

    name = "fifo"

    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Pick the first backlogged task (submission order)."""
        return 0


class LocalityPolicy(SchedulingPolicy):
    """Data-locality-aware selection: fewest bytes to move first."""

    name = "locality"

    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Prefer the task whose working set needs the fewest staged-in bytes."""
        memory = scheduler.memory
        best_index = 0
        best_cost: Optional[int] = None
        for index, task in enumerate(backlog):
            requirements = list(task.chunk_requirements())
            cost = memory.staging_bytes_needed(requirements) if requirements else 0
            if best_cost is None or cost < best_cost:
                best_index, best_cost = index, cost
            if best_cost == 0:
                break
        return best_index


#: Rank of task kinds under the ``priority`` policy: keep data moving first.
_KIND_RANK: Dict[str, int] = {
    "send": 0,
    "recv": 0,
    "copy": 1,
    "reduce": 2,
    "combine": 3,
    "fill": 3,
    "createchunk": 3,
    "deletechunk": 3,
    "download": 4,
    "launch": 5,
    "fusedlaunch": 5,
}


class PriorityPolicy(SchedulingPolicy):
    """Oldest launch first; within a launch, communication before compute."""

    name = "priority"

    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Prefer the highest-priority task, then submission order."""
        def key(item: Tuple[int, T.Task]) -> Tuple[int, int, int]:
            index, task = item
            launch = getattr(task, "launch_id", None)
            launch_rank = launch if launch is not None else task.task_id
            return (launch_rank, _KIND_RANK.get(task.kind, 4), index)

        return min(enumerate(backlog), key=key)[0]


class SmallestFirstPolicy(SchedulingPolicy):
    """Smallest staged footprint first (packs more tasks under the throttle)."""

    name = "smallest"

    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Prefer the task with the smallest staging footprint."""
        memory = scheduler.memory

        def footprint(item: Tuple[int, T.Task]) -> Tuple[int, int]:
            index, task = item
            requirements = list(task.chunk_requirements())
            return (memory.footprint(requirements) if requirements else 0, index)

        return min(enumerate(backlog), key=footprint)[0]


class FairSharePolicy(SchedulingPolicy):
    """Cross-tenant WFQ order: smallest fair-share tag first.

    The serving layer (:mod:`repro.runtime.serving`) publishes its
    :class:`~repro.runtime.serving.FairShareClock` on the runtime as
    ``fair_share`` and tags every submitted task with its tenant.  This
    policy drains a worker's backlog in ascending order of each task's
    tenant tag on that clock, so a backlog holding several tenants' tasks
    is served in the same weighted order the admission scheduler used.
    Untenanted tasks (or runtimes with no serving layer) rank first, which
    degenerates to ``fifo`` on the single-tenant path.
    """

    name = "fairshare"

    def select(self, backlog: Sequence[T.Task], scheduler: "object") -> int:
        """Prefer the task of the tenant with the smallest virtual tag."""
        runtime = getattr(scheduler, "runtime", None)
        clock = getattr(runtime, "fair_share", None)
        if clock is None:
            return 0
        task_tenant = runtime._task_tenant

        def key(item: Tuple[int, T.Task]) -> Tuple[float, int]:
            index, task = item
            tenant = task_tenant.get(task.task_id)
            tag = clock.tag_of(tenant) if tenant is not None else 0.0
            return (tag, index)

        return min(enumerate(backlog), key=key)[0]


#: Registry of selectable policies, keyed by :attr:`SchedulingPolicy.name`.
POLICIES: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (
        FifoPolicy,
        LocalityPolicy,
        PriorityPolicy,
        SmallestFirstPolicy,
        FairSharePolicy,
    )
}


def get_policy(policy: "str | SchedulingPolicy | None") -> SchedulingPolicy:
    """Resolve a policy argument (name, instance or ``None``) to an instance."""
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; available: {sorted(POLICIES)}"
        ) from None
