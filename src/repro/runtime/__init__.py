"""The distributed runtime system (Sec. 3).

One central **driver** coordinates a set of **workers** (one per node).  The
driver owns the bookkeeping of distributed arrays and runs the execution
planner; each worker owns a scheduler, a memory manager and a set of
executors (its GPUs, the PCIe bus, the NIC and the disk).  In the paper these
are separate processes connected by MPI; in this reproduction they are plain
Python objects sharing one discrete-event simulation engine, with an explicit
network layer between workers so communication cost and overlap behave the
same way.
"""

from .system import RuntimeSystem, ExecutionMode, OutOfMemoryError, RuntimeStats
from .memory import MemoryManager
from .policies import (
    FifoPolicy,
    LocalityPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    SmallestFirstPolicy,
    get_policy,
)
from .scheduler import Scheduler
from .storage import ChunkStorage
from .network import NetworkFabric

__all__ = [
    "RuntimeSystem",
    "ExecutionMode",
    "OutOfMemoryError",
    "RuntimeStats",
    "MemoryManager",
    "Scheduler",
    "ChunkStorage",
    "NetworkFabric",
    "SchedulingPolicy",
    "FifoPolicy",
    "LocalityPolicy",
    "PriorityPolicy",
    "SmallestFirstPolicy",
    "get_policy",
]
