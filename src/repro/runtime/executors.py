"""Task execution: durations, resource selection and functional payloads.

Each worker owns one :class:`TaskExecutor`.  When the scheduler has staged a
task, the executor decides which simulated resource the task occupies and for
how long (kernel launches use the roofline cost model, copies and sends are
sized in bytes on shared-bandwidth resources), and — in ``functional``
execution mode — performs the task's actual effect on the chunk buffers so
results can be checked against NumPy references.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core import tasks as T
from ..core.chunk import ChunkMeta
from ..core.reductions import get_reduce_op
from ..core.types import ArrayView, LaunchContext
from ..hardware.topology import Node
from ..perfmodel.costs import OverheadModel, kernel_time
from .network import Message, NetworkFabric
from .resources import WorkerResources
from .storage import ChunkStorage

__all__ = ["TaskExecutor"]

_TINY_TASK_DURATION = 1e-6


class TaskExecutor:
    """Executes staged tasks on one worker's simulated resources."""

    def __init__(
        self,
        node: Node,
        resources: WorkerResources,
        storage: ChunkStorage,
        fabric: NetworkFabric,
        kernel_registry: Dict[str, object],
        overheads: OverheadModel,
        functional: bool,
        memory=None,
    ):
        self.node = node
        self.worker = node.worker
        self.resources = resources
        self.storage = storage
        self.fabric = fabric
        self.kernel_registry = kernel_registry
        self.overheads = overheads
        self.functional = functional
        self.memory = memory
        self.kernel_launches = 0
        self.kernel_seconds = 0.0
        #: task-kind -> bound handler, filled on first dispatch of each kind
        #: (one getattr per kind instead of an f-string + getattr per task)
        self._dispatch: Dict[str, Callable] = {}

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def execute(self, task: T.Task, on_complete: Callable[[], None]) -> None:
        """Occupy the right resource for the task, run its payload, then complete."""
        kind = task.kind
        handler = self._dispatch.get(kind)
        if handler is None:
            handler = getattr(self, f"_exec_{kind}", None)
            if handler is None:
                raise NotImplementedError(f"no executor for task kind {kind!r}")
            self._dispatch[kind] = handler
        handler(task, on_complete)

    # ------------------------------------------------------------------ #
    # bookkeeping-only tasks
    # ------------------------------------------------------------------ #
    def _exec_createchunk(self, task: T.CreateChunkTask, done: Callable[[], None]) -> None:
        def payload() -> None:
            if task.chunk.chunk_id not in self.storage:
                self.storage.create(task.chunk)
            done()

        self.resources.cpu.request(_TINY_TASK_DURATION, payload, label=task.label or "create")

    def _exec_deletechunk(self, task: T.DeleteChunkTask, done: Callable[[], None]) -> None:
        def payload() -> None:
            self.storage.delete(task.chunk_id)
            if self.memory is not None:
                self.memory.delete(task.chunk_id)
            done()

        self.resources.cpu.request(_TINY_TASK_DURATION, payload, label=task.label or "delete")

    def _exec_combine(self, task: T.CombineTask, done: Callable[[], None]) -> None:
        self.resources.cpu.request(_TINY_TASK_DURATION, done, label=task.label or "combine")

    # ------------------------------------------------------------------ #
    # window-aware memory planning (reserve / release / promote)
    # ------------------------------------------------------------------ #
    def _exec_memoryreserve(self, task: T.MemoryReserveTask, done: Callable[[], None]) -> None:
        def payload() -> None:
            self.memory.reserve(
                task.space, list(task.chunk_ids), task.nbytes,
                reservation=task.reservation, pin=task.pin,
            )
            done()

        self.resources.cpu.request(_TINY_TASK_DURATION, payload, label=task.label or "reserve")

    def _exec_memoryrelease(self, task: T.MemoryReleaseTask, done: Callable[[], None]) -> None:
        def payload() -> None:
            self.memory.release(task.reservation)
            done()

        self.resources.cpu.request(_TINY_TASK_DURATION, payload, label=task.label or "release")

    def _exec_promotechunk(self, task: T.PromoteChunkTask, done: Callable[[], None]) -> None:
        # The promotion itself happened during staging (the chunk was pulled
        # to its home GPU through the ordinary staging machinery); the task
        # body only accounts for it.
        def payload() -> None:
            if self.memory is not None:
                self.memory.stats.prefetch_promotions += 1
            done()

        self.resources.cpu.request(_TINY_TASK_DURATION, payload, label=task.label or "promote")

    # ------------------------------------------------------------------ #
    # data initialisation / download
    # ------------------------------------------------------------------ #
    def _exec_fill(self, task: T.FillTask, done: Callable[[], None]) -> None:
        duration = task.nbytes / self.node.spec.cpu.mem_bandwidth

        def payload() -> None:
            if self.functional:
                self.storage.fill(task.chunk_id, task.value, task.data)
            done()

        self.resources.cpu.request(duration, payload, label=task.label or "fill")

    def _exec_download(self, task: T.DownloadTask, done: Callable[[], None]) -> None:
        def to_driver() -> None:
            if self.worker == 0:
                duration = task.nbytes / self.node.spec.cpu.mem_bandwidth
                self.resources.cpu.request(duration, done, label=task.label or "download")
            else:
                self.resources.nic.request(task.nbytes, done, label=task.label or "download")

        # Chunk contents are brought to host memory over PCIe before going to the driver.
        self.resources.pcie.request(task.nbytes, to_driver, label="download d2h")

    # ------------------------------------------------------------------ #
    # kernel execution
    # ------------------------------------------------------------------ #
    def _exec_launch(self, task: T.LaunchTask, done: Callable[[], None]) -> None:
        kernel = self.kernel_registry[task.kernel_name]
        device_spec = self.node.spec.gpus[task.device.local_index]
        duration = (
            kernel_time(device_spec, kernel.cost, task.superblock.thread_count, task.scalar_args)
            + self.overheads.launch_fixed
        )
        self.kernel_launches += 1
        self.kernel_seconds += duration

        def payload() -> None:
            if self.functional:
                self._run_kernel(kernel, task)
            done()

        resource = self.resources.compute_for(task.device)
        resource.request(duration, payload, label=task.label or task.kernel_name)

    def _run_kernel(self, kernel, task: T.LaunchTask) -> None:
        self._run_segment(
            kernel,
            array_args=task.array_args,
            array_shapes=task.array_shapes,
            scalar_args=task.scalar_args,
            grid_dims=task.grid_dims,
            block_dims=task.block_dims,
            superblock=task.superblock,
            device=task.device,
        )

    def _run_segment(
        self, kernel, *, array_args, array_shapes, scalar_args,
        grid_dims, block_dims, superblock, device,
    ) -> None:
        views: Dict[str, ArrayView] = {}
        for binding in array_args:
            chunk: ChunkMeta = self.storage.meta(binding.chunk_id)
            buffer = self.storage.buffer(binding.chunk_id)
            array_shape = array_shapes[binding.param]
            views[binding.param] = ArrayView(
                buffer,
                chunk.region,
                array_shape,
                access_region=binding.access_region,
                writable=binding.mode in ("write", "readwrite", "reduce"),
                name=binding.param,
            )
        launch_ctx = LaunchContext(
            grid_dims=grid_dims,
            block_dims=block_dims,
            thread_region=superblock.thread_region,
            block_offset=superblock.block_offset,
            superblock_index=superblock.index,
            device_name=str(device),
        )
        kernel.run_superblock(launch_ctx, scalar_args, views)

    def _exec_fusedlaunch(self, task: T.FusedLaunchTask, done: Callable[[], None]) -> None:
        """One superblock of a fused launch chain: the segments run back to
        back on the same compute resource (each with its own superblock when
        the chain fuses compatible-but-different work distributions) and pay
        the fixed launch overhead once — that, plus the elided intermediate
        transfers and the in-task reduction epilogues, is the fusion saving."""
        device_spec = self.node.spec.gpus[task.device.local_index]
        duration = self.overheads.launch_fixed
        for segment, (name, scalars) in enumerate(
            zip(task.kernel_names, task.scalar_args_list)
        ):
            kernel = self.kernel_registry[name]
            threads = task.segment_superblock(segment).thread_count
            duration += kernel_time(device_spec, kernel.cost, threads, scalars)
        # Reduction-tail epilogues combine the superblock partial into the
        # device accumulator inside the task: bandwidth-bound like a
        # ReduceTask, minus the extra launch latency (the fusion saving).
        for epilogues in task.reduce_epilogues:
            for epilogue in epilogues:
                duration += epilogue.nbytes / device_spec.mem_bandwidth / 0.8
        self.kernel_launches += task.segment_count
        self.kernel_seconds += duration

        def payload() -> None:
            if self.functional:
                for segment in range(task.segment_count):
                    self._run_segment(
                        self.kernel_registry[task.kernel_names[segment]],
                        array_args=task.array_args_list[segment],
                        array_shapes=task.array_shapes_list[segment],
                        scalar_args=task.scalar_args_list[segment],
                        grid_dims=task.grid_dims_list[segment],
                        block_dims=task.block_dims_list[segment],
                        superblock=task.segment_superblock(segment),
                        device=task.device,
                    )
                    if task.reduce_epilogues:
                        for epilogue in task.reduce_epilogues[segment]:
                            op = get_reduce_op(epilogue.op)
                            self.storage.combine_region(
                                epilogue.src_chunk,
                                epilogue.dst_chunk,
                                epilogue.region,
                                op.combine,
                            )
            done()

        resource = self.resources.compute_for(task.device)
        resource.request(duration, payload, label=task.label or "fused launch")

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #
    def _exec_copy(self, task: T.CopyTask, done: Callable[[], None]) -> None:
        def payload() -> None:
            if self.functional:
                self.storage.copy_region(task.src_chunk, task.dst_chunk, task.region)
            done()

        if (
            task.src_device is not None
            and task.dst_device is not None
            and task.src_device == task.dst_device
        ):
            resource = self.resources.dtod_for(task.src_device)
        else:
            resource = self.resources.pcie
        resource.request(task.nbytes, payload, label=task.label or "copy")

    def _exec_reduce(self, task: T.ReduceTask, done: Callable[[], None]) -> None:
        dst_meta = self.storage.meta(task.dst_chunk)
        device = dst_meta.home
        device_spec = self.node.spec.gpus[device.local_index]
        duration = (
            task.nbytes / device_spec.mem_bandwidth / 0.8 + device_spec.launch_latency
        )

        def payload() -> None:
            if self.functional:
                op = get_reduce_op(task.op)
                self.storage.combine_region(task.src_chunk, task.dst_chunk, task.region, op.combine)
            done()

        self.resources.compute_for(device).request(duration, payload, label=task.label or "reduce")

    def _exec_send(self, task: T.SendTask, done: Callable[[], None]) -> None:
        data: Optional[np.ndarray] = None
        if self.functional:
            data = self.storage.read_region(task.chunk_id, task.region)
        message = Message(
            src=self.worker,
            dst=task.dst_worker,
            tag=task.tag,
            nbytes=task.nbytes,
            data=data,
        )

        def delivered() -> None:
            self.fabric.deliver(message)
            done()

        def on_wire() -> None:
            self.resources.nic.request(task.nbytes, delivered, label=task.label or "send")

        # Inter-node transfers are staged through host memory (Sec. 3.2):
        # device -> host over PCIe, then host -> remote host over the network.
        self.resources.pcie.request(task.nbytes, on_wire, label="send d2h")

    def _exec_recv(self, task: T.RecvTask, done: Callable[[], None]) -> None:
        def on_message(message: Message) -> None:
            def into_device() -> None:
                if self.functional and message.data is not None:
                    self.storage.write_region(task.chunk_id, task.region, message.data)
                done()

            # Arrived in host memory; move into the chunk's GPU over PCIe.
            self.resources.pcie.request(task.nbytes, into_device, label="recv h2d")

        self.fabric.expect(task.src_worker, self.worker, task.tag, on_message)
