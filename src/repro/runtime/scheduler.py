"""Per-worker task scheduler (Sec. 3.3).

Each worker schedules its own DAG: the driver only *plans*.  A task becomes
ready when all its predecessor tasks (possibly from earlier plans) have
finished; it then passes through the worker's scheduler control path (fixed
per-task cost), is *staged* by the memory manager (all its chunks are
materialised in the right memory spaces), executed on its resource, and
finally unstaged so its successors can proceed.

The scheduler throttles how many bytes may be staged per executor at once
(default 2 GB, as in the paper): too few concurrently staged tasks prevents
overlapping transfers with execution, too many causes contention because
chunks are staged too far ahead of time.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import tasks as T
from ..errors import FaultError
from ..hardware.topology import WorkerId
from .executors import TaskExecutor
from .memory import MemoryManager
from .policies import SchedulingPolicy, get_policy
from .resources import WorkerResources

__all__ = ["Scheduler", "DEFAULT_STAGE_THRESHOLD"]

#: Maximum bytes staged per executor at any one time (Sec. 3.4: "2 GB works well").
DEFAULT_STAGE_THRESHOLD = 2 * 1024 ** 3

#: interned "sched <kind>" labels (one f-string per task kind, not per task)
_SCHED_LABELS: Dict[str, str] = {}


class Scheduler:
    """Schedules one worker's tasks onto its local resources."""

    def __init__(
        self,
        runtime: "object",
        worker: WorkerId,
        resources: WorkerResources,
        memory: MemoryManager,
        executor: TaskExecutor,
        stage_threshold: int = DEFAULT_STAGE_THRESHOLD,
        policy: "str | SchedulingPolicy | None" = None,
    ):
        self.runtime = runtime
        self.worker = worker
        self.resources = resources
        self.memory = memory
        self.executor = executor
        self.stage_threshold = stage_threshold
        self.policy = get_policy(policy)

        self._waiting: Dict[int, List] = {}
        self._staged_bytes: Dict[object, int] = {}
        self._throttled: Dict[object, List[T.Task]] = {}
        #: Total tasks across all throttle backlogs, so ``pending_tasks`` is
        #: O(1) instead of summing every backlog on each call.
        self._throttled_count = 0
        #: per-throttle-key count of backlogged tasks per non-zero priority,
        #: so ``_drain_throttled`` finds the top priority without scanning
        #: the whole backlog on every completion
        self._throttled_priorities: Dict[object, Dict[int, int]] = {}
        #: task_id -> (requirements, footprint) memo for backlogged tasks, so
        #: every failed drain attempt does not recompute the task's chunk
        #: requirements and re-sum its footprint (both are static per task)
        self._throttled_info: Dict[int, tuple] = {}
        self.tasks_completed = 0
        self.tasks_submitted = 0
        #: Permanently failed local devices.  Recovery retargets all chunks
        #: and invalidates every cached plan, so no new task should ever name
        #: a blacklisted device — this guard turns a planner bug into a loud
        #: :class:`~repro.errors.FaultError` instead of computing on a ghost.
        self.blacklist: set = set()

    # ------------------------------------------------------------------ #
    # submission and readiness
    # ------------------------------------------------------------------ #
    def submit(self, tasks: List[T.Task]) -> None:
        """Receive a DAG fragment from the driver."""
        # Plans carry hundreds of tasks with several deps each; reading the
        # runtime's finished-set directly keeps the double dependency walk
        # (count, then subscribe) free of per-dep method-call overhead.
        finished = self.runtime._finished
        subscribe = self.runtime.subscribe
        blacklist = self.blacklist
        for task in tasks:
            self.tasks_submitted += 1
            if blacklist and getattr(task, "device", None) in blacklist:
                raise FaultError(
                    f"task {task} targets blacklisted device {task.device} "
                    f"(failed permanently); plans must be rebuilt against the "
                    f"surviving topology"
                )
            deps = task.deps
            unmet = 0
            for dep in deps:
                if dep not in finished:
                    unmet += 1
            if not unmet:
                self._ready(task)
                continue
            # One countdown entry and ONE shared callback per task (not one
            # closure per dependency); the entry is mutated in place.
            self._waiting[task.task_id] = [task, unmet]
            callback = self._make_dep_callback(task.task_id)
            for dep in deps:
                if dep not in finished:
                    subscribe(dep, callback)

    def _make_dep_callback(self, task_id: int):
        waiting = self._waiting

        def _dep_done() -> None:
            entry = waiting.get(task_id)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] == 0:
                del waiting[task_id]
                self._ready(entry[0])

        return _dep_done

    def _ready(self, task: T.Task) -> None:
        """Dependencies satisfied: pass through the scheduler control path."""
        kind = task.kind
        label = _SCHED_LABELS.get(kind)
        if label is None:
            label = _SCHED_LABELS.setdefault(kind, f"sched {kind}")
        self.resources.scheduler.request(
            0.0, lambda: self._begin_staging(task), label=label
        )

    # ------------------------------------------------------------------ #
    # staging with throttle
    # ------------------------------------------------------------------ #
    def _throttle_key(self, task: T.Task) -> object:
        if isinstance(task, (T.LaunchTask, T.FusedLaunchTask, T.PromoteChunkTask)):
            return task.device
        if isinstance(task, T.ReduceTask):
            home = self.memory.home_of(task.dst_chunk)
            if home is not None:
                return home
        return "host"

    def _begin_staging(self, task: T.Task) -> None:
        requirements = list(task.chunk_requirements())
        key = self._throttle_key(task)
        footprint = self.memory.footprint(requirements) if requirements else 0
        staged = self._staged_bytes.get(key, 0)
        if requirements and staged > 0 and staged + footprint > self.stage_threshold:
            self._throttled.setdefault(key, []).append(task)
            self._throttled_count += 1
            self._throttled_info[task.task_id] = (requirements, footprint)
            if task.priority > 0:
                counts = self._throttled_priorities.setdefault(key, {})
                counts[task.priority] = counts.get(task.priority, 0) + 1
            return
        self._stage_now(task, key, footprint, requirements)

    def _stage_now(self, task: T.Task, key, footprint: int, requirements) -> None:
        self._staged_bytes[key] = self._staged_bytes.get(key, 0) + footprint
        had_requirements = bool(requirements)

        def _staged() -> None:
            self.executor.execute(
                task, lambda: self._finish(task, key, footprint, had_requirements)
            )

        if requirements:
            # Promotions are issued ahead of any consumer: their staging is
            # background work and must not count as a stall event.
            self.memory.stage(
                task.task_id, requirements, _staged,
                background=isinstance(task, T.PromoteChunkTask),
            )
        else:
            _staged()

    def _finish(self, task: T.Task, key, footprint: int, had_requirements: bool) -> None:
        if footprint or had_requirements:
            self.memory.unstage(task.task_id)
        self._staged_bytes[key] = self._staged_bytes.get(key, 0) - footprint
        self.tasks_completed += 1
        self.runtime.notify_completion(task.task_id)
        self._drain_throttled(key)

    def _drain_throttled(self, key) -> None:
        backlog = self._throttled.get(key)
        if not backlog:
            return
        priority_counts = self._throttled_priorities.get(key)
        while backlog:
            # Prefetch-marked transfers (the launch window raises the priority
            # of the next launch's halo exchange) jump the backlog so data for
            # launch i+1 moves while launch i computes; among equal priorities
            # the scheduling policy picks which backlogged task to stage next
            # (the paper picks arbitrarily; locality/priority policies are the
            # future work of Sec. 3.3).  A prefetch too large for the staging
            # throttle must not block the policy's own pick, so both
            # candidates are tried; when neither fits we stop draining until
            # more work unstages.  The top backlog priority comes from the
            # maintained per-priority counts, not a scan of the backlog.
            candidates = [self.policy.select(backlog, self)]
            top = max(priority_counts) if priority_counts else 0
            if top > 0:
                preferred = next(
                    i for i, task in enumerate(backlog) if task.priority == top
                )
                if preferred != candidates[0]:
                    candidates.insert(0, preferred)
            for index in candidates:
                task = backlog[index]
                requirements, footprint = self._throttled_info[task.task_id]
                staged = self._staged_bytes.get(key, 0)
                if staged > 0 and staged + footprint > self.stage_threshold:
                    continue
                backlog.pop(index)
                self._throttled_count -= 1
                del self._throttled_info[task.task_id]
                if task.priority > 0 and priority_counts:
                    remaining = priority_counts.get(task.priority, 0) - 1
                    if remaining > 0:
                        priority_counts[task.priority] = remaining
                    else:
                        priority_counts.pop(task.priority, None)
                self._stage_now(task, key, footprint, requirements)
                break
            else:
                return

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def pending_tasks(self) -> int:
        """Tasks neither finished nor currently staged (waiting + throttled)."""
        return len(self._waiting) + self._throttled_count

    def describe_stuck(self) -> str:
        """Human-readable dump of stuck tasks and the resources they wait on
        (dependency counts, staging-throttle keys, memory-staging queues) for
        :class:`~repro.errors.SimulationStalled` reports."""
        lines = [f"worker {self.worker}: {len(self._waiting)} waiting tasks"]
        for task, remaining in list(self._waiting.values())[:10]:
            lines.append(f"  {task} waiting on {remaining} dependencies ({task.deps})")
        for key, queue in self._throttled.items():
            if queue:
                lines.append(
                    f"  {len(queue)} tasks throttled on resource {key} "
                    f"({self._staged_bytes.get(key, 0)} bytes staged)"
                )
        stalled = getattr(self.memory, "_pending", ())
        for pending in list(stalled)[:10]:
            chunks = ", ".join(f"chunk#{cid}({kind})" for cid, kind in pending.requirements)
            lines.append(
                f"  task {pending.task_id} stalled in memory staging on [{chunks}]"
            )
        return "\n".join(lines)
