"""Multi-tenant serving: concurrent jobs multiplexed onto one runtime.

The paper's runtime executes one application's launches at a time; this
module turns the reproduction into a small *service*: several tenants, each
with its own :class:`~repro.core.context.Context` (own planner, launch
window, kernel namespace and arrays), share one
:class:`~repro.runtime.system.RuntimeSystem` — one simulated cluster, one
event engine, one memory manager per worker.

Three mechanisms make that safe and fair:

* **Weighted fair queueing** (:class:`FairShareClock`): admission of job
  *quanta* (one workload iteration each, see
  :meth:`~repro.kernels.base.Workload.steps`) is ordered by per-tenant
  virtual finish tags — the same finish-tag min-heap formulation the
  simulator's :class:`~repro.simulator.resources.BandwidthResource` uses for
  link sharing, with task-count as the service metric.  A tenant with weight
  2 drains twice the launches per unit of virtual service as a tenant with
  weight 1, and an idle tenant's tag is lifted to the current virtual time
  when it next becomes busy, so backlogs never build up credit.
* **Memory quotas** (:meth:`~repro.runtime.memory.MemoryManager.set_tenant_quota`):
  each tenant may be capped at a fraction of every memory space.  Quotas
  are soft (work-conserving) — a tenant can exceed its share of idle
  capacity, but only its overage is evictable by rivals, and residency
  within the quota is protected from foreign spill pressure like a pin.
* **Tenant-tagged plans**: every plan a tenant's planner builds carries its
  tenant id, so the runtime tracks per-tenant outstanding work (job
  completion = the tenant's outstanding count reaching zero) and the
  ``fairshare`` scheduling policy can drain mixed worker backlogs in WFQ
  order.

Fault tolerance composes: the serving system owns the fault injector, and a
permanent device failure is recovered at a quiescent point for *all* tenant
contexts in one sweep — each affected tenant's arrays are rebuilt through
its own planner, and tenants with no chunks on the dead device see no
recovery plans at all.

The whole layer is driver-side orchestration of the single discrete-event
simulation; with one tenant and the default policy it degenerates to exactly
the single-tenant code path (no per-tenant branch is ever taken).
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.context import Context
from ..errors import ArgumentValueError, SimulationStalled
from ..hardware.specs import ClusterSpec, azure_nc24rsv2
from ..kernels.base import create_workload
from .system import ExecutionMode, RuntimeSystem

__all__ = [
    "FairShareClock",
    "JobSpec",
    "JobRecord",
    "ServingReport",
    "ServingSystem",
    "poisson_trace",
    "DEFAULT_MIX",
]

#: engine events advanced per scheduling poll while work is in flight —
#: coarse enough to amortise the poll, fine enough that admission decisions
#: track completion closely
_ENGINE_QUANTUM = 256


class FairShareClock:
    """Weighted-fair-queueing virtual clock over tenants.

    The finish-tag min-heap formulation of
    :class:`~repro.simulator.resources.BandwidthResource`, applied to
    tenants: each tenant carries a virtual finish tag; charging ``service``
    units advances its tag by ``service / weight`` from ``max(tag, V)``
    (where ``V`` is the clock's virtual time), and the next quantum goes to
    the *eligible* tenant with the smallest tag.  Selection advances ``V``
    to the winner's tag, which is what lifts idle tenants to the present
    instead of letting them hoard credit.  Stale heap entries (a tenant
    charged since they were pushed) are discarded lazily on pop.
    """

    def __init__(self):
        self.weights: Dict[int, float] = {}
        self._tags: Dict[int, float] = {}
        self._virtual = 0.0
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = itertools.count()

    def add_tenant(self, tenant: int, weight: float = 1.0) -> None:
        """Register a tenant; its tag starts at the current virtual time."""
        if weight <= 0:
            raise ArgumentValueError(f"tenant weight must be positive, got {weight}")
        if tenant in self.weights:
            raise ArgumentValueError(f"tenant {tenant} already registered")
        self.weights[tenant] = weight
        self._tags[tenant] = self._virtual
        heapq.heappush(self._heap, (self._virtual, next(self._seq), tenant))

    @property
    def virtual_time(self) -> float:
        """The clock's current virtual time ``V``."""
        return self._virtual

    def tag_of(self, tenant: int) -> float:
        """The tenant's current virtual finish tag (monotone per tenant)."""
        return self._tags.get(tenant, 0.0)

    def charge(self, tenant: int, service: float) -> float:
        """Charge ``service`` units against ``tenant``; returns the new tag."""
        if service < 0:
            raise ArgumentValueError(f"service must be non-negative, got {service}")
        tag = max(self._tags[tenant], self._virtual) + service / self.weights[tenant]
        self._tags[tenant] = tag
        heapq.heappush(self._heap, (tag, next(self._seq), tenant))
        return tag

    def select(self, eligible) -> Optional[int]:
        """The eligible tenant with the smallest tag, advancing ``V`` to it.

        Entries for ineligible tenants are buffered and re-pushed, so a
        tenant skipped now (job blocked on its in-flight cap) keeps its
        place in line.  Returns ``None`` when no eligible tenant exists.
        """
        buffered: List[Tuple[float, int, int]] = []
        winner: Optional[int] = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            tag, _, tenant = entry
            if self._tags.get(tenant) != tag:
                continue  # stale: the tenant was charged since this push
            buffered.append(entry)
            if tenant in eligible:
                winner = tenant
                self._virtual = max(self._virtual, tag)
                break
        for entry in buffered:
            heapq.heappush(self._heap, entry)
        return winner


@dataclass(frozen=True)
class JobSpec:
    """One job of a serving trace: a workload run on behalf of a tenant."""

    arrival: float
    tenant: int
    workload: str
    n: int
    params: Dict = field(default_factory=dict)


@dataclass
class JobRecord:
    """Lifecycle of one submitted job, in virtual seconds."""

    spec: JobSpec
    job_id: int
    #: when the job left the queue and its workload was prepared
    started: Optional[float] = None
    #: when the tenant's outstanding-task count last hit zero for this job
    finished: Optional[float] = None
    #: the live workload object (kept so tests can gather/verify results)
    workload: object = None

    @property
    def latency(self) -> Optional[float]:
        """Arrival-to-completion time, or ``None`` while in flight."""
        if self.finished is None:
            return None
        return self.finished - self.spec.arrival

    @property
    def queue_delay(self) -> Optional[float]:
        """Arrival-to-start time, or ``None`` while queued."""
        if self.started is None:
            return None
        return self.started - self.spec.arrival


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class ServingReport:
    """Aggregate outcome of one served trace."""

    jobs: List[JobRecord]
    makespan: float
    virtual_time: float
    tenant_counters: Dict[int, Dict[str, int]]
    tenant_tags: Dict[int, float]

    @property
    def throughput(self) -> float:
        """Completed jobs per virtual second over the makespan."""
        return len(self.jobs) / max(self.makespan, 1e-12)

    def latencies(self) -> List[float]:
        """Per-job arrival-to-completion latencies."""
        return [job.latency for job in self.jobs if job.latency is not None]

    def to_dict(self) -> Dict:
        """JSON-serialisable form (benchmarks and ``serve --trace``)."""
        latencies = self.latencies()
        return {
            "jobs": [
                {
                    "job_id": job.job_id,
                    "tenant": job.spec.tenant,
                    "workload": job.spec.workload,
                    "n": job.spec.n,
                    "arrival": job.spec.arrival,
                    "started": job.started,
                    "finished": job.finished,
                    "latency": job.latency,
                }
                for job in self.jobs
            ],
            "jobs_completed": len(self.jobs),
            "makespan": self.makespan,
            "virtual_time": self.virtual_time,
            "throughput": self.throughput,
            "latency_p50": _percentile(latencies, 50.0),
            "latency_p99": _percentile(latencies, 99.0),
            "tenant_counters": {
                str(tenant): dict(counters)
                for tenant, counters in sorted(self.tenant_counters.items())
            },
            "tenant_tags": {
                str(tenant): tag for tenant, tag in sorted(self.tenant_tags.items())
            },
        }


@dataclass
class _Tenant:
    """Book-keeping for one registered tenant."""

    tenant_id: int
    name: str
    weight: float
    context: Context
    queue: "deque[JobRecord]" = field(default_factory=deque)
    #: the running job's step generator, or None when idle/draining
    generator: object = None
    running: Optional[JobRecord] = None
    #: True once the running job's generator is exhausted and we are only
    #: waiting for the tenant's outstanding tasks to hit zero
    draining: bool = False
    #: tenant_tasks_submitted watermark at the last fair-share charge
    _last_charged: int = 0


class ServingSystem:
    """An async job queue serving many tenants on one simulated cluster.

    Usage::

        serving = ServingSystem(azure_nc24rsv2(nodes=1, gpus_per_node=4))
        serving.add_tenant("alice", weight=2.0, memory_fraction=0.5)
        serving.add_tenant("bob")
        serving.submit(JobSpec(arrival=0.0, tenant=0, workload="hotspot3", n=1 << 20))
        serving.submit(JobSpec(arrival=0.1, tenant=1, workload="kmeans2", n=1 << 18))
        report = serving.run()

    Scheduling model: each tenant runs at most one job at a time (its queue
    is FIFO); across tenants, ready quanta are admitted in
    :class:`FairShareClock` order, one workload iteration per quantum, with
    at most ``inflight_tasks`` outstanding tasks per tenant so a heavy
    tenant cannot flood the workers' backlogs.  ``max_active`` additionally
    caps how many jobs may be in flight at once (admission control);
    ``max_active=1`` serialises the whole trace, which is the baseline arm
    of the serving benchmark.
    """

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        mode: object = ExecutionMode.FUNCTIONAL,
        max_active: Optional[int] = None,
        inflight_tasks: int = 96,
        scheduler_policy: object = "fairshare",
        memory_capacities=None,
        faults: object = None,
        fault_seed: int = 0,
        **runtime_kwargs,
    ):
        if cluster is None:
            cluster = azure_nc24rsv2(nodes=1, gpus_per_node=4)
        if isinstance(mode, str):
            mode = ExecutionMode(mode)
        self.runtime = RuntimeSystem(
            cluster,
            mode=mode,
            scheduler_policy=scheduler_policy,
            memory_capacities=memory_capacities,
            **runtime_kwargs,
        )
        self.clock = FairShareClock()
        self.runtime.fair_share = self.clock
        self.max_active = max_active
        self.inflight_tasks = int(inflight_tasks)
        self._tenants: List[_Tenant] = []
        self._jobs: List[JobSpec] = []
        self._records: List[JobRecord] = []
        self._job_counter = itertools.count()
        #: jobs finished, in completion order (the report's job list keeps
        #: submission order; this one is what the fairness tests inspect)
        self.completed: List[JobRecord] = []
        self.fault_injector = None
        if faults is not None:
            from ..runtime.recovery import LineageTracker
            from ..simulator.faults import FaultInjector, FaultSpec

            spec = FaultSpec.parse(faults) if isinstance(faults, str) else faults
            self.fault_injector = FaultInjector(spec, seed=fault_seed)
            self.runtime.fault_injector = self.fault_injector
            self.runtime.lineage = LineageTracker()
            self.runtime.recovery_handler = self._recover_device
            self.fault_injector.install(self.runtime)

    # ------------------------------------------------------------------ #
    # tenants and jobs
    # ------------------------------------------------------------------ #
    def add_tenant(
        self,
        name: str = "",
        weight: float = 1.0,
        memory_fraction: Optional[float] = None,
        **context_kwargs,
    ) -> Context:
        """Register a tenant; returns its :class:`~repro.core.context.Context`.

        ``weight`` scales the tenant's fair share of scheduling quanta;
        ``memory_fraction`` (optional) soft-caps the tenant at that fraction
        of every memory space.  Each tenant's device list is rotated by its
        index so small single-chunk arrays spread across the GPUs.
        """
        tenant_id = len(self._tenants)
        context = Context(
            runtime=self.runtime,
            tenant=tenant_id,
            tenant_name=name or f"tenant-{tenant_id}",
            device_rotation=tenant_id,
            **context_kwargs,
        )
        self.clock.add_tenant(tenant_id, weight)
        if memory_fraction is not None:
            self.runtime.set_tenant_quota(tenant_id, memory_fraction)
        self._tenants.append(
            _Tenant(
                tenant_id=tenant_id,
                name=context.tenant_name,
                weight=weight,
                context=context,
            )
        )
        return context

    @property
    def contexts(self) -> List[Context]:
        """Every tenant's context, in tenant-id order."""
        return [tenant.context for tenant in self._tenants]

    def submit(self, job: JobSpec) -> None:
        """Queue one job for the serving run."""
        if not 0 <= job.tenant < len(self._tenants):
            raise ArgumentValueError(
                f"job names tenant {job.tenant}, but only {len(self._tenants)} "
                f"tenants are registered"
            )
        self._jobs.append(job)

    def submit_trace(self, jobs: Sequence[JobSpec]) -> None:
        """Queue a whole trace of jobs."""
        for job in jobs:
            self.submit(job)

    def fail_device(self, device) -> None:
        """Mark a GPU permanently failed mid-trace (requires ``faults=``)."""
        if self.fault_injector is None:
            raise ArgumentValueError(
                "fault injection is not enabled; construct the ServingSystem "
                "with faults=FaultSpec() (or a spec string)"
            )
        self.fault_injector.fail_device(device)

    def _recover_device(self, device) -> None:
        """Recover every tenant from one device failure (quiescent point)."""
        if not self._tenants:
            return
        primary = self._tenants[0].context
        primary._recover_device(device, peers=self.contexts)

    # ------------------------------------------------------------------ #
    # the serving loop
    # ------------------------------------------------------------------ #
    def run(self) -> ServingReport:
        """Serve every submitted job to completion; returns the report.

        The loop interleaves three activities deterministically:

        1. *admission* — jobs whose arrival time has passed join their
           tenant's FIFO queue; a queued job starts when its tenant is idle
           and the global ``max_active`` cap has room;
        2. *scheduling* — among started jobs whose tenant is under its
           in-flight task cap, the fair-share clock picks one tenant and
           its job advances by exactly one workload quantum (the launches
           are flushed to the runtime and charged to the tenant's tag);
        3. *simulation* — when no quantum can be admitted, the engine runs
           until completions (or the next arrival) change that.  Pending
           device failures are recovered stop-the-world at the next
           quiescent point, exactly like the single-tenant path.
        """
        engine = self.runtime.engine
        arrivals = deque(
            sorted(
                (JobRecord(spec=spec, job_id=next(self._job_counter)) for spec in self._jobs),
                key=lambda record: (record.spec.arrival, record.job_id),
            )
        )
        self._jobs = []
        self._records.extend(arrivals)
        first_arrival = arrivals[0].spec.arrival if arrivals else engine.now
        previous_idle_hook = self.runtime.on_tenant_idle
        self.runtime.on_tenant_idle = self._on_tenant_idle
        try:
            while True:
                # 1. admission: arrivals into tenant queues, queued jobs into
                # the active set (FIFO per tenant, capped globally).
                while arrivals and arrivals[0].spec.arrival <= engine.now:
                    record = arrivals.popleft()
                    self._tenants[record.spec.tenant].queue.append(record)
                in_flight = sum(1 for t in self._tenants if t.running is not None)
                for tenant in self._tenants:
                    if tenant.running is None and tenant.queue:
                        if self.max_active is not None and in_flight >= self.max_active:
                            break
                        self._start_job(tenant, tenant.queue.popleft())
                        in_flight += 1

                # 2. one fair-share quantum, if any tenant can take it.
                eligible = {
                    tenant.tenant_id
                    for tenant in self._tenants
                    if tenant.generator is not None
                    and self.runtime.tenant_outstanding(tenant.tenant_id)
                    < self.inflight_tasks
                }
                if eligible:
                    winner = self._tenants[self.clock.select(eligible)]
                    self._pump(winner)
                    continue

                # 3. nothing schedulable: advance the simulation.
                injector = self.runtime.fault_injector
                if injector is not None and injector.pending_failures:
                    # Stop-the-world recovery at a quiescent point: drain all
                    # in-flight work, then the recovery handler sweeps every
                    # tenant (run_until_idle drives both).
                    self.runtime.run_until_idle()
                    continue
                running = any(t.running is not None for t in self._tenants)
                if engine.pending:
                    engine.run(max_events=_ENGINE_QUANTUM)
                    continue
                if running and self.runtime.outstanding_tasks > 0:
                    raise SimulationStalled(
                        "serving loop stalled: the event queue drained with "
                        f"{self.runtime.outstanding_tasks} tasks outstanding"
                    )
                if arrivals:
                    # Idle gap before the next arrival: the engine does not
                    # advance time on an empty queue, so plant a no-op event
                    # at the arrival instant and run up to it.
                    next_arrival = arrivals[0].spec.arrival
                    if next_arrival > engine.now:
                        engine.schedule_at(next_arrival, lambda: None)
                        engine.run(until=next_arrival)
                    continue
                if running or any(t.queue for t in self._tenants):
                    continue
                break
            # Drain any stragglers (and recover any last pending failures).
            self.runtime.run_until_idle()
        finally:
            self.runtime.on_tenant_idle = previous_idle_hook
        end = engine.now
        for record in self._records:
            if record.finished is None and record.started is not None:
                record.finished = end  # finished in the final drain
        return ServingReport(
            jobs=list(self._records),
            makespan=end - first_arrival,
            virtual_time=end,
            tenant_counters=self.runtime.tenant_counters(),
            tenant_tags={t.tenant_id: self.clock.tag_of(t.tenant_id) for t in self._tenants},
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _start_job(self, tenant: _Tenant, record: JobRecord) -> None:
        """Prepare the workload and install its step generator."""
        spec = record.spec
        workload = create_workload(spec.workload, tenant.context, spec.n, **spec.params)
        workload.prepare()
        tenant.context.window.flush("serving-prepare")
        record.workload = workload
        record.started = self.runtime.engine.now
        tenant.running = record
        tenant.generator = workload.steps()
        tenant.draining = False
        # Preparation launches (array creation) are deliberately not
        # charged: they are the untimed section of the benchmark protocol.
        tenant._last_charged = self.runtime.tenant_tasks_submitted.get(tenant.tenant_id, 0)

    def _pump(self, tenant: _Tenant) -> None:
        """Advance one tenant's running job by one quantum and charge it."""
        context = tenant.context
        try:
            next(tenant.generator)
        except StopIteration:
            tenant.generator = None
            tenant.draining = True
        context.expr.force_pending()
        context.window.flush("serving")
        submitted = self.runtime.tenant_tasks_submitted.get(tenant.tenant_id, 0)
        # Minimum charge 1: even a task-free quantum consumes a slot, and a
        # zero charge would let a tenant spin without its tag ever moving.
        self.clock.charge(tenant.tenant_id, max(submitted - tenant._last_charged, 1))
        tenant._last_charged = submitted
        if tenant.draining and self.runtime.tenant_outstanding(tenant.tenant_id) == 0:
            self._finish_job(tenant)

    def _on_tenant_idle(self, tenant_id: int) -> None:
        """Runtime callback: a tenant's outstanding count reached zero."""
        tenant = self._tenants[tenant_id]
        if tenant.draining and tenant.running is not None:
            self._finish_job(tenant)

    def _finish_job(self, tenant: _Tenant) -> None:
        record = tenant.running
        record.finished = self.runtime.engine.now
        tenant.running = None
        tenant.generator = None
        tenant.draining = False
        self.completed.append(record)


# --------------------------------------------------------------------------- #
# trace generation
# --------------------------------------------------------------------------- #
#: default job mix of the serving benchmark: the three workloads the issue
#: trace replays — a stencil, a map-reduce and the CGC application — all
#: sized so a single job cannot saturate a 4-GPU cluster on its own.
DEFAULT_MIX: List[Tuple[str, int, Dict]] = [
    ("hotspot3", 512 * 512, {"iterations": 4}),
    ("kmeans2", 200_000, {"quantize": True, "iterations": 3}),
    ("cgc", 160 * 160, {"iterations": 2}),
]


def poisson_trace(
    seed: int,
    njobs: int,
    rate: float,
    tenants: int,
    mix: Optional[Sequence[Tuple[str, int, Dict]]] = None,
) -> List[JobSpec]:
    """A seeded Poisson arrival trace of mixed jobs over ``tenants`` tenants.

    Inter-arrival times are exponential with ``rate`` arrivals per virtual
    second; each job draws a uniform tenant and a uniform entry of ``mix``
    (``(workload, n, params)`` triples, :data:`DEFAULT_MIX` by default).
    The same ``seed`` always replays the identical trace.
    """
    if njobs <= 0:
        raise ArgumentValueError(f"njobs must be positive, got {njobs}")
    if rate <= 0:
        raise ArgumentValueError(f"rate must be positive, got {rate}")
    if tenants <= 0:
        raise ArgumentValueError(f"tenants must be positive, got {tenants}")
    choices = list(mix) if mix is not None else list(DEFAULT_MIX)
    rng = random.Random(seed)
    now = 0.0
    jobs: List[JobSpec] = []
    for _ in range(njobs):
        now += rng.expovariate(rate)
        workload, n, params = choices[rng.randrange(len(choices))]
        jobs.append(
            JobSpec(
                arrival=now,
                tenant=rng.randrange(tenants),
                workload=workload,
                n=n,
                params=dict(params),
            )
        )
    return jobs
