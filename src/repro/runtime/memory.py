"""Per-worker memory manager (Sec. 3.4).

Every worker tracks where each of its chunks currently lives (GPU memory, host
memory or disk) and how much of every memory space is in use.  Staging a task
means materialising all of the task's chunks in the memory spaces it needs —
allocating from pre-sized pools, evicting least-recently-used unpinned chunks
to the next level of the hierarchy when a pool is full (GPU → host → disk),
and transferring previously evicted data back.  All of a task's chunks are
reserved in one atomic action to prevent deadlocks, exactly as the paper
describes.  Transfers issued here occupy the PCIe/disk resources of the
simulator, which is what makes spilling visible in the measured run times.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.chunk import ChunkId, ChunkMeta
from ..errors import ArgumentValueError
from ..hardware.topology import MemoryKind, MemorySpace, Node
from .resources import WorkerResources

__all__ = [
    "MemoryManager",
    "OutOfMemoryError",
    "MemoryStats",
    "use_legacy_memory_scans",
]

#: When True, eviction-candidate selection and the evictable-bytes check use
#: the original full-scan/sort code paths instead of the LRU index and the
#: per-space counters.  Only the perf harness flips this (to quantify the
#: indexed rewrite against pre-rewrite behaviour); the LRU index is still
#: maintained so the manager can switch back at any time.
_LEGACY_SCANS = False


@contextmanager
def use_legacy_memory_scans(enabled: bool = True):
    """Run with the pre-rewrite O(n)-scan memory-manager hot paths."""
    global _LEGACY_SCANS
    previous = _LEGACY_SCANS
    _LEGACY_SCANS = enabled
    try:
        yield
    finally:
        _LEGACY_SCANS = previous


class OutOfMemoryError(RuntimeError):
    """A task's working set cannot fit in the requested memory space."""


@dataclass
class MemoryStats:
    """Counters exposed for tests, benchmarks and EXPERIMENTS.md."""

    bytes_to_gpu: int = 0
    bytes_from_gpu: int = 0
    bytes_to_disk: int = 0
    bytes_from_disk: int = 0
    #: compressed (on-disk) bytes actually written/read by the disk tier;
    #: equal to ``bytes_to_disk``/``bytes_from_disk`` when the compression
    #: model is off, smaller when it is on (``Context(disk=True)``)
    disk_stored_bytes_written: int = 0
    disk_stored_bytes_read: int = 0
    evictions_to_host: int = 0
    evictions_to_disk: int = 0
    #: evictions performed reactively inside a staging transaction (the
    #: chunk-by-chunk spilling window-aware memory planning replaces)
    staging_evictions: int = 0
    #: victims spilled up front by :meth:`MemoryManager.reserve` (the window's
    #: planned pre-eviction; also counted in ``evictions_to_host/_disk``)
    chunks_preevicted: int = 0
    #: :class:`~repro.core.tasks.PromoteChunkTask` stagings that pulled a
    #: spilled chunk back up the hierarchy ahead of its use
    prefetch_promotions: int = 0
    #: stall events: staging transactions that could not complete instantly —
    #: either queued behind pinned chunks or blocked on incoming transfers
    staging_stalls: int = 0
    #: staging transactions that completed instantly *because* a window memory
    #: plan had already promoted or reserved their chunks
    staging_stalls_avoided: int = 0
    peak_gpu_bytes: Dict[int, int] = field(default_factory=dict)


@dataclass
class _ChunkState:
    meta: ChunkMeta
    space: Optional[MemorySpace] = None
    pins: int = 0
    last_use: int = 0


@dataclass
class _PendingStage:
    task_id: int
    requirements: List[Tuple[ChunkId, str]]
    callback: Callable[[], None]
    background: bool = False


class MemoryManager:
    """Tracks residency, allocation and spilling of one worker's chunks."""

    def __init__(
        self,
        node: Node,
        resources: WorkerResources,
        capacities: Optional[Dict[MemorySpace, int]] = None,
        chunk_tenants: Optional[Dict[ChunkId, int]] = None,
    ):
        self.node = node
        self.worker = node.worker
        self.resources = resources
        self._chunks: Dict[ChunkId, _ChunkState] = {}
        self._staged: Dict[int, List[ChunkId]] = {}
        self._pending: List[_PendingStage] = []
        self._use_counter = 0
        self.stats = MemoryStats()
        #: reservation id -> chunk ids pinned by :meth:`reserve`
        self._reservations: Dict[int, List[ChunkId]] = {}
        #: chunks a window memory plan promoted or reserved; consumed (once)
        #: by the stall-avoidance accounting in :meth:`_try_stage`
        self._prepared: set = set()
        #: True while :meth:`reserve` runs, so evictions are attributed to the
        #: planned pre-eviction counter instead of the staging-time one
        self._in_reserve = False
        #: Multi-tenant serving: chunk id -> tenant id, *shared* with the
        #: runtime (contexts tag their chunks there).  Empty — and every
        #: tenant branch below is a single falsy-dict test — on the
        #: single-tenant path.
        self._tenants: Dict[ChunkId, int] = (
            chunk_tenants if chunk_tenants is not None else {}
        )
        #: tenant id -> soft quota as a fraction of each space's capacity
        self._tenant_quota: Dict[int, float] = {}
        #: (tenant, space) -> resident / pinned bytes, maintained alongside
        #: the per-space counters so quota checks never scan chunks
        self._tenant_used: Dict[Tuple[int, MemorySpace], int] = defaultdict(int)
        self._tenant_pinned: Dict[Tuple[int, MemorySpace], int] = defaultdict(int)
        #: Compressed disk tier (``Context(disk=True)``): a
        #: :class:`~repro.perfmodel.compression.CompressionModel` sampling a
        #: deterministic per-chunk compression ratio.  When set, disk
        #: transfers charge *compressed* bytes on the per-direction disk
        #: lanes plus the raw bytes on the host codec lanes; when ``None``
        #: (the default) the legacy symmetric ``disk`` link is used and
        #: behaviour is bit-identical to pre-disk-tier baselines.
        self.disk_model = None

        self._capacity: Dict[MemorySpace, int] = {}
        self._used: Dict[MemorySpace, int] = {}
        #: Bytes of currently pinned chunks per space, maintained on
        #: pin/unpin/move so eviction feasibility checks never scan all chunks.
        self._pinned: Dict[MemorySpace, int] = {}
        #: LRU index of resident chunks per space.  Front = least recently
        #: used.  ``_touch`` moves a chunk to the back; chunks arriving by
        #: eviction (old data pushed down the hierarchy, not a use) enter at
        #: the front so they remain first in line for the next spill level.
        self._lru: Dict[MemorySpace, "OrderedDict[ChunkId, _ChunkState]"] = {}
        #: this worker's host space, interned once — ``_target_space`` sits on
        #: the staging hot path and must not construct a space per call
        self._host_space = node.host_space
        spaces = [dev.memory_space for dev in node.devices]
        spaces += [self._host_space, node.disk_space]
        for space in spaces:
            if capacities and space in capacities:
                cap = capacities[space]
            elif space.kind is MemoryKind.GPU:
                cap = node.spec.gpus[space.device_index].memory_bytes
            elif space.kind is MemoryKind.HOST:
                cap = node.spec.host_memory_bytes
            else:
                cap = node.spec.disk.capacity_bytes
            self._capacity[space] = cap
            self._used[space] = 0
            self._pinned[space] = 0
            self._lru[space] = OrderedDict()

    # ------------------------------------------------------------------ #
    # chunk lifecycle
    # ------------------------------------------------------------------ #
    def register(self, chunk: ChunkMeta) -> None:
        """Make a chunk's metadata known to the manager (no space is allocated yet)."""
        if chunk.chunk_id in self._chunks:
            raise ValueError(f"chunk {chunk.chunk_id} already registered")
        self._chunks[chunk.chunk_id] = _ChunkState(meta=chunk)

    def delete(self, chunk_id: ChunkId) -> None:
        """Forget a chunk and free its residency bookkeeping; pinned chunks refuse."""
        state = self._chunks.pop(chunk_id, None)
        if state is None:
            return
        if state.pins:
            self._chunks[chunk_id] = state
            raise RuntimeError(f"cannot delete pinned chunk {chunk_id}")
        if state.space is not None:
            self._used[state.space] -= state.meta.nbytes
            del self._lru[state.space][chunk_id]
            if self._tenants:
                tenant = self._tenants.get(chunk_id)
                if tenant is not None:
                    self._tenant_used[(tenant, state.space)] -= state.meta.nbytes
        self._prepared.discard(chunk_id)

    def knows(self, chunk_id: ChunkId) -> bool:
        """True when the chunk has been registered with this manager."""
        return chunk_id in self._chunks

    # ------------------------------------------------------------------ #
    # device failure (fault tolerance)
    # ------------------------------------------------------------------ #
    def mark_device_failed(self, device) -> Tuple[List[ChunkId], List[ChunkId]]:
        """Account for the permanent failure of one local GPU.

        Returns ``(lost, surviving)``:

        * ``lost`` — chunks *resident* in the dead GPU's memory space; their
          contents are gone and must be rematerialized by lineage replay.
          Their residency is moved to host memory (where replay rebuilds
          them) without issuing transfers — recovery charges its own lump
          costs instead.
        * ``surviving`` — chunks homed on the dead device whose data had been
          spilled to host or disk; the spilled replica is promoted (the data
          is intact), only the chunk's home needs retargeting.
        """
        dead = device.memory_space
        host = self._host_space
        lost: List[ChunkId] = []
        surviving: List[ChunkId] = []
        for chunk_id, state in self._chunks.items():
            if state.space == dead:
                lost.append(chunk_id)
            elif state.meta.home == device:
                surviving.append(chunk_id)
        for chunk_id in lost:
            state = self._chunks[chunk_id]
            nbytes = state.meta.nbytes
            self._used[dead] -= nbytes
            del self._lru[dead][chunk_id]
            if state.pins:  # quiescent point: defensive, nothing should be pinned
                self._pinned[dead] -= nbytes
                self._pinned[host] += nbytes
            self._used[host] += nbytes
            self._lru[host][chunk_id] = state
            state.space = host
            if self._tenants:
                tenant = self._tenants.get(chunk_id)
                if tenant is not None:
                    self._tenant_used[(tenant, dead)] -= nbytes
                    self._tenant_used[(tenant, host)] += nbytes
                    if state.pins:
                        self._tenant_pinned[(tenant, dead)] -= nbytes
                        self._tenant_pinned[(tenant, host)] += nbytes
            self._prepared.discard(chunk_id)
        return lost, surviving

    def retarget_home(self, chunk_id: ChunkId, new_meta: ChunkMeta) -> None:
        """Swap a chunk's metadata after recovery rehomed it on this worker."""
        self._chunks[chunk_id].meta = new_meta

    def adopt_resident(self, chunk: ChunkMeta) -> None:
        """Register a chunk whose data already sits in this worker's host
        memory (cross-worker recovery rehoming)."""
        self.register(chunk)
        state = self._chunks[chunk.chunk_id]
        host = self._host_space
        state.space = host
        self._used[host] += chunk.nbytes
        self._lru[host][chunk.chunk_id] = state
        if self._tenants:
            tenant = self._tenants.get(chunk.chunk_id)
            if tenant is not None:
                self._tenant_used[(tenant, host)] += chunk.nbytes

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def home_of(self, chunk_id: ChunkId):
        """Home device of a registered chunk, or ``None`` when unknown.

        The home is where the data distribution assigned the chunk; the chunk
        may currently be spilled elsewhere (see :meth:`residency`).
        """
        state = self._chunks.get(chunk_id)
        return state.meta.home if state is not None else None

    def residency(self, chunk_id: ChunkId) -> Optional[MemorySpace]:
        """The memory space the chunk currently lives in, or ``None`` if nowhere."""
        return self._chunks[chunk_id].space

    def used_bytes(self, space: MemorySpace) -> int:
        """Bytes currently resident in ``space``."""
        return self._used[space]

    def capacity(self, space: MemorySpace) -> int:
        """Configured pool size of ``space`` in bytes."""
        return self._capacity[space]

    def free_bytes(self, space: MemorySpace) -> int:
        """Unused bytes of ``space`` (capacity minus resident bytes)."""
        return self._capacity[space] - self._used[space]

    def pinned_bytes(self, space: MemorySpace) -> int:
        """Bytes of currently pinned (unevictable) chunks in ``space``."""
        return self._pinned[space]

    def evictable_bytes(self, space: MemorySpace) -> int:
        """Bytes of unpinned resident chunks in ``space`` (O(1) counters)."""
        return self._used[space] - self._pinned[space]

    def lru_order(self, space: MemorySpace) -> List[ChunkId]:
        """Resident chunks of ``space``, least recently used first."""
        return list(self._lru[space])

    # ------------------------------------------------------------------ #
    # tenant quotas (multi-tenant serving)
    # ------------------------------------------------------------------ #
    def set_tenant_quota(self, tenant: int, fraction: float) -> None:
        """Cap ``tenant`` at ``fraction`` of every space's capacity (soft).

        The quota is work-conserving: the tenant may exceed it while room is
        free, but only its *overage* above the quota may be evicted to make
        room for another tenant.  Residency within the quota is protected
        from foreign eviction pressure exactly like a pin (without being
        pinned from the tenant's own point of view).
        """
        if not 0.0 < fraction <= 1.0:
            raise ArgumentValueError(
                f"quota fraction must be in (0, 1], got {fraction}"
            )
        self._tenant_quota[tenant] = fraction

    def tenant_used_bytes(self, tenant: int, space: MemorySpace) -> int:
        """Bytes of ``tenant``'s chunks currently resident in ``space``."""
        return self._tenant_used.get((tenant, space), 0)

    def _tenant_evictable(self, tenant: int, space: MemorySpace) -> int:
        """Bytes a *rival* tenant may evict from ``tenant`` in ``space``:
        the overage above whichever is larger, the quota or the pinned set."""
        used = self._tenant_used.get((tenant, space), 0)
        if not used:
            return 0
        pinned = self._tenant_pinned.get((tenant, space), 0)
        quota = int(self._tenant_quota[tenant] * self._capacity[space])
        return used - max(pinned, min(used, quota))

    def _protected_foreign_bytes(self, space: MemorySpace, requester) -> int:
        """Unpinned bytes in ``space`` that ``requester`` may not evict
        (other tenants' residency within their quotas).  Zero whenever no
        quota is configured, so the single-tenant path never pays for this."""
        if not self._tenant_quota:
            return 0
        total = 0
        for tenant in self._tenant_quota:
            if tenant == requester:
                continue
            used = self._tenant_used.get((tenant, space), 0)
            if not used:
                continue
            pinned = self._tenant_pinned.get((tenant, space), 0)
            total += used - pinned - self._tenant_evictable(tenant, space)
        return total

    def _requester_of(self, requirements: List[Tuple[ChunkId, str]]):
        """The tenant staging these requirements (first tagged chunk wins)."""
        if not self._tenants:
            return None
        for chunk_id, _ in requirements:
            tenant = self._tenants.get(chunk_id)
            if tenant is not None:
                return tenant
        return None

    # ------------------------------------------------------------------ #
    # staging
    # ------------------------------------------------------------------ #
    def _target_space(self, state: _ChunkState, kind: str) -> MemorySpace:
        if kind == "gpu":
            return state.meta.home.memory_space
        if kind == "host":
            return self._host_space
        if kind == "any":
            # Materialised wherever it currently is; unallocated chunks start
            # in host memory (matching the behaviour of a fresh upload).
            if state.space is not None:
                return state.space
            return self._host_space
        raise ValueError(f"unknown staging kind {kind!r}")

    def footprint(self, requirements: List[Tuple[ChunkId, str]]) -> int:
        """Total bytes of the chunks named in ``requirements``."""
        return sum(self._chunks[cid].meta.nbytes for cid, _ in requirements)

    def staging_bytes_needed(self, requirements: List[Tuple[ChunkId, str]]) -> int:
        """Bytes that staging ``requirements`` would actually have to move.

        Chunks already resident in the memory space a task needs cost nothing;
        everything else must be transferred (from host, another space, or be
        allocated fresh).  Locality-aware scheduling policies use this to
        prefer tasks whose working set is already in place.
        """
        total = 0
        for chunk_id, kind in requirements:
            state = self._chunks.get(chunk_id)
            if state is None:
                continue
            target = self._target_space(state, kind)
            if state.space != target:
                total += state.meta.nbytes
        return total

    def stage(
        self,
        task_id: int,
        requirements: List[Tuple[ChunkId, str]],
        callback: Callable[[], None],
        background: bool = False,
    ) -> None:
        """Materialise and pin every required chunk, then invoke ``callback``.

        If the request cannot be satisfied right now because pinned chunks
        occupy the space, it is queued and retried when something unstages.
        If it can never be satisfied, :class:`OutOfMemoryError` is raised.
        ``background`` marks stagings issued ahead of any use (the window's
        promotion prefetch): their transfers delay no task, so they do not
        count as stall events, and the chunks they materialise are remembered
        so the stall they avoid later can be credited to the memory plan.
        """
        if not self._try_stage(task_id, requirements, callback, background=background):
            if not background:
                self.stats.staging_stalls += 1
            self._pending.append(
                _PendingStage(task_id, requirements, callback, background)
            )

    def unstage(self, task_id: int) -> None:
        """Release the pins taken by :meth:`stage` for ``task_id``."""
        for chunk_id in self._staged.pop(task_id, []):
            state = self._chunks.get(chunk_id)
            if state is not None:
                self._unpin(state)
        self._retry_pending()

    def _retry_pending(self) -> None:
        still_pending: List[_PendingStage] = []
        for pending in self._pending:
            if not self._try_stage(
                pending.task_id, pending.requirements, pending.callback,
                background=pending.background, retry=True,
            ):
                still_pending.append(pending)
        self._pending = still_pending

    # ------------------------------------------------------------------ #
    # the staging transaction
    # ------------------------------------------------------------------ #
    def _try_stage(
        self,
        task_id: int,
        requirements: List[Tuple[ChunkId, str]],
        callback: Callable[[], None],
        background: bool = False,
        retry: bool = False,
    ) -> bool:
        # Fast path: a single already-resident requirement (sends, recvs and
        # most copies) needs no capacity checks, no transfers and no per-space
        # accounting — just touch, pin and fire.  Accounting is identical to
        # the general path specialised to one resident chunk.
        if len(requirements) == 1:
            chunk_id, kind = requirements[0]
            state = self._chunks[chunk_id]
            if kind == "gpu":
                target = state.meta.home.memory_space
            elif kind == "host":
                target = self._host_space
            else:
                target = self._target_space(state, kind)
            space = state.space
            if space is target or space == target:
                self._touch(state)
                self._pin(state)
                staged_list = self._staged.get(task_id)
                if staged_list is None:
                    self._staged[task_id] = [chunk_id]
                else:
                    staged_list.append(chunk_id)
                if background:
                    self._prepared.add(chunk_id)
                elif chunk_id in self._prepared:
                    if not retry:
                        self.stats.staging_stalls_avoided += 1
                    self._prepared.discard(chunk_id)
                callback()
                return True

        # Resolve targets and verify feasibility per memory space.  The two
        # common kinds are dispatched inline (interned spaces, so the
        # residency comparison is usually an identity hit).
        plan: List[Tuple[_ChunkState, MemorySpace]] = []
        needed: Dict[MemorySpace, int] = {}
        working_set: Dict[MemorySpace, int] = {}
        plan_ids = {chunk_id for chunk_id, _ in requirements}
        chunks = self._chunks
        for chunk_id, kind in requirements:
            state = chunks[chunk_id]
            if kind == "gpu":
                target = state.meta.home.memory_space
            elif kind == "host":
                target = self._host_space
            else:
                target = self._target_space(state, kind)
            plan.append((state, target))
            nbytes = state.meta.nbytes
            working_set[target] = working_set.get(target, 0) + nbytes
            space = state.space
            if space is not target and space != target:
                needed[target] = needed.get(target, 0) + nbytes

        # The task's whole working set (chunks to bring in *and* chunks that
        # are already resident but will be pinned) must fit simultaneously;
        # otherwise no amount of waiting or eviction can ever run this task.
        for space, nbytes in working_set.items():
            if nbytes > self._capacity[space]:
                raise OutOfMemoryError(
                    f"task {task_id} needs {nbytes} bytes simultaneously in {space} "
                    f"(capacity {self._capacity[space]}); the task's working set can "
                    f"never fit — use smaller chunks or a larger memory pool"
                )

        # Check that evicting *unpinned* chunks not belonging to this task
        # could make enough room right now; otherwise wait for an unstage.
        # The per-space counters make this O(|plan|) instead of O(|chunks|).
        # Under tenant quotas, other tenants' within-quota residency counts
        # as unevictable for this requester even though it is not pinned.
        requester = self._requester_of(requirements)
        for space, nbytes in needed.items():
            if _LEGACY_SCANS:
                evictable = sum(
                    st.meta.nbytes
                    for st in self._chunks.values()
                    if st.space == space and st.pins == 0
                    and st.meta.chunk_id not in plan_ids
                )
            else:
                evictable = self._used[space] - self._pinned[space]
                for chunk_id in plan_ids:
                    st = self._chunks[chunk_id]
                    if st.space == space and st.pins == 0:
                        evictable -= st.meta.nbytes
            evictable -= self._protected_foreign_bytes(space, requester)
            lower = self._lower_space(space)
            if lower is not None and self._pinned[lower]:
                # Staged disk→host promotions pin host bytes while their
                # disk reads are in flight; during that window the eviction
                # cascade out of this space can only push down what the
                # lower level can still receive.  (Zero pinned bytes below —
                # always, without the disk tier — leaves the check as-is.)
                receivable = self.free_bytes(lower) + (
                    self._used[lower] - self._pinned[lower]
                )
                evictable = min(evictable, max(0, receivable))
            if self.free_bytes(space) + evictable < nbytes:
                return False

        # Commit: make room, move/allocate, pin.  Bookkeeping happens now (so
        # the reservation is atomic); the incoming data transfers occupy their
        # resources and the callback only fires when they all complete, which
        # is what makes un-spilling visible in the task's start time.
        staged: List[ChunkId] = []
        transfers: List[Tuple[object, int, str]] = []
        lru = self._lru
        pinned = self._pinned
        for state, target in plan:
            space = state.space
            if space is not target and space != target:
                self._make_room(
                    target, state.meta.nbytes, protect=plan_ids, requester=requester
                )
                transfers.extend(self._move(state, target))
            # inline _touch + _pin (residency may have changed in _move, so
            # state.space is re-read after the move branch)
            self._use_counter += 1
            state.last_use = self._use_counter
            space = state.space
            if space is not None:
                lru[space].move_to_end(state.meta.chunk_id)
            state.pins += 1
            if state.pins == 1 and space is not None:
                pinned[space] += state.meta.nbytes
                if self._tenants:
                    tenant = self._tenants.get(state.meta.chunk_id)
                    if tenant is not None:
                        self._tenant_pinned[(tenant, space)] += state.meta.nbytes
            staged.append(state.meta.chunk_id)
        self._staged.setdefault(task_id, []).extend(staged)

        if background:
            # A promotion materialised these chunks ahead of use: remember
            # them so the stall they spare the real consumer is credited.
            self._prepared.update(plan_ids)
        elif transfers:
            if not retry:  # queued requests were already counted as a stall
                self.stats.staging_stalls += 1
            # The preparation failed to spare this consumer a stall (other
            # chunks still had to move); consume the credit so a later task
            # touching the same chunks cannot claim it.
            self._prepared -= plan_ids
        elif self._prepared & plan_ids:
            # Only instantly-satisfied *first* attempts are credited: a queued
            # request already stalled, even if a promotion landed meanwhile.
            if not retry:
                self.stats.staging_stalls_avoided += 1
            self._prepared -= plan_ids

        if not transfers:
            callback()
            return True

        remaining = {"count": len(transfers)}

        def _one_done() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                callback()

        for resource, nbytes, label in transfers:
            resource.request(nbytes, _one_done, label=label)
        return True

    def _touch(self, state: _ChunkState) -> None:
        self._use_counter += 1
        state.last_use = self._use_counter
        if state.space is not None:
            self._lru[state.space].move_to_end(state.meta.chunk_id)

    def _pin(self, state: _ChunkState) -> None:
        state.pins += 1
        if state.pins == 1 and state.space is not None:
            self._pinned[state.space] += state.meta.nbytes
            if self._tenants:
                tenant = self._tenants.get(state.meta.chunk_id)
                if tenant is not None:
                    self._tenant_pinned[(tenant, state.space)] += state.meta.nbytes

    def _unpin(self, state: _ChunkState) -> None:
        if state.pins > 0:
            state.pins -= 1
            if state.pins == 0 and state.space is not None:
                self._pinned[state.space] -= state.meta.nbytes
                if self._tenants:
                    tenant = self._tenants.get(state.meta.chunk_id)
                    if tenant is not None:
                        self._tenant_pinned[(tenant, state.space)] -= state.meta.nbytes

    # ------------------------------------------------------------------ #
    # window-aware reservations (planned pre-eviction)
    # ------------------------------------------------------------------ #
    def reserve(
        self,
        space: MemorySpace,
        chunks: List[ChunkId],
        nbytes: int,
        reservation: Optional[int] = None,
        pin: bool = True,
    ) -> int:
        """Prepare ``space`` for a launch group that will stage ``chunks``.

        The launch window's drain pass calls this (through a
        :class:`~repro.core.tasks.MemoryReserveTask`) with the group's
        combined working set for one memory space:

        * **planned pre-eviction** — LRU victims *outside* ``chunks`` are
          spilled down the hierarchy until ``nbytes`` are free (or nothing
          evictable remains), so the group's stagings find room instead of
          evicting chunk-by-chunk on the critical path; the write-back
          transfers start now, overlapped with whatever is computing;
        * **pinning** — when ``pin`` is set, the members of ``chunks``
          already resident in ``space`` are pinned until :meth:`release`,
          protecting them from interleaved evictions.  The planner only
          requests pinning when the whole working set fits the space.

        Returns the number of chunks pre-evicted.  Never raises: if the
        request cannot be met in full (pinned chunks in the way), it frees as
        much as possible and lets staging handle the rest reactively.
        """
        target = min(nbytes, self._capacity[space])
        keep = {cid for cid in chunks if self._chunks.get(cid) is not None}
        requester = self._requester_of([(cid, "any") for cid in chunks])
        # What pre-eviction can achieve at most: everything unpinned, not
        # part of the working set, and not protected by a rival tenant's
        # quota can go.  (O(|keep|) thanks to the counters.)
        achievable = self.free_bytes(space) + self.evictable_bytes(space)
        achievable -= self._protected_foreign_bytes(space, requester)
        for cid in keep:
            state = self._chunks[cid]
            if state.space == space and state.pins == 0:
                achievable -= state.meta.nbytes
        target = min(target, achievable)
        evicted_before = self.stats.chunks_preevicted
        self._in_reserve = True
        try:
            if target > self.free_bytes(space):
                self._make_room(space, target, protect=keep, requester=requester)
        except OutOfMemoryError:
            pass  # partial pre-eviction is still useful; staging copes
        finally:
            self._in_reserve = False
        pinned: List[ChunkId] = []
        if pin:
            for cid in chunks:
                state = self._chunks.get(cid)
                if state is not None and state.space == space:
                    self._pin(state)
                    pinned.append(cid)
                    self._prepared.add(cid)
        if reservation is not None and pinned:
            self._reservations.setdefault(reservation, []).extend(pinned)
        return self.stats.chunks_preevicted - evicted_before

    def release(self, reservation: int) -> None:
        """Drop the pins taken by the :meth:`reserve` call with the same id."""
        for chunk_id in self._reservations.pop(reservation, []):
            state = self._chunks.get(chunk_id)
            if state is not None:
                self._unpin(state)
        self._retry_pending()

    # ------------------------------------------------------------------ #
    # allocation, eviction and transfers
    # ------------------------------------------------------------------ #
    def _lower_space(self, space: MemorySpace) -> Optional[MemorySpace]:
        if space.kind is MemoryKind.GPU:
            return MemorySpace(self.worker, MemoryKind.HOST)
        if space.kind is MemoryKind.HOST:
            return MemorySpace(self.worker, MemoryKind.DISK)
        return None

    def _make_room(
        self, space: MemorySpace, nbytes: int, protect=frozenset(), requester=None
    ) -> None:
        """Evict LRU unpinned chunks from ``space`` until ``nbytes`` fit.

        ``protect`` names chunks that must not be evicted even though they are
        not pinned yet — the rest of the working set of the task currently
        being staged.  ``requester`` is the tenant asking for the room (or
        ``None``): under tenant quotas, a rival tenant's chunks are only
        eligible as victims while that tenant sits *above* its quota, and
        only down to the quota line — its within-quota working set is as
        untouchable as a pinned chunk.

        Victims come straight off the front of the per-space LRU index, so
        selection is O(1) per victim (plus any pinned/protected chunks walked
        over) instead of a full sort of the worker's chunks.
        """
        missing = nbytes - self.free_bytes(space)
        if missing <= 0:
            return
        if _LEGACY_SCANS:
            candidates = sorted(
                (
                    st
                    for st in self._chunks.values()
                    if st.space == space and st.pins == 0
                    and st.meta.chunk_id not in protect
                ),
                key=lambda st: st.last_use,
            )
        else:
            candidates = self._lru[space].values()
        quotas = self._tenant_quota
        lower_space = self._lower_space(space)
        #: bytes the next level down can still receive; ``None`` = unbounded.
        #: Only bounded while the lower level holds *pinned* bytes (staged
        #: disk→host promotions in flight) — a victim flowing down becomes
        #: unpinned there, so the budget does not shrink as the walk moves
        #: victims, but a victim larger than the budget can never cascade.
        receivable: Optional[int] = None
        if lower_space is not None and self._pinned[lower_space]:
            receivable = self.free_bytes(lower_space) + (
                self._used[lower_space] - self._pinned[lower_space]
            )
        #: per rival tenant: bytes still evictable before hitting its quota
        allowance: Dict[int, int] = {}
        victims: List[_ChunkState] = []
        for state in candidates:
            if missing <= 0:
                break
            if state.pins or state.meta.chunk_id in protect:
                continue
            if receivable is not None and state.meta.nbytes > receivable:
                continue
            if quotas:
                tenant = self._tenants.get(state.meta.chunk_id)
                if tenant is not None and tenant != requester and tenant in quotas:
                    left = allowance.get(tenant)
                    if left is None:
                        left = self._tenant_evictable(tenant, space)
                    if state.meta.nbytes > left:
                        allowance[tenant] = left
                        continue
                    allowance[tenant] = left - state.meta.nbytes
            victims.append(state)
            missing -= state.meta.nbytes
        # Moving a victim mutates the index, so evict after the walk.
        for victim in victims:
            lower = self._lower_space(space)
            if lower is None:
                raise OutOfMemoryError(
                    f"cannot evict from {space}: no lower memory level exists"
                )
            self._make_room(lower, victim.meta.nbytes, requester=requester)
            self._move(victim, lower, eviction=True)
        # Each eviction front-inserted its victim into the lower space, which
        # reverses the batch's relative order; re-front in reverse so the
        # oldest victim is first in line for the next spill level again.
        for victim in reversed(victims):
            if victim.space is not None:
                self._lru[victim.space].move_to_end(victim.meta.chunk_id, last=False)
        if self.free_bytes(space) < nbytes:
            raise OutOfMemoryError(
                f"could not free {nbytes} bytes in {space} "
                f"(free {self.free_bytes(space)}, capacity {self._capacity[space]})"
            )

    def _move(self, state: _ChunkState, target: MemorySpace, eviction: bool = False):
        """Update bookkeeping for a chunk move and return the data transfers it implies.

        Evictions issue their transfers immediately (write-back can proceed in
        the background, but still loads the PCIe/disk resources); staging-in
        moves return the transfer list so the caller can block on completion.
        """
        source = state.space
        nbytes = state.meta.nbytes
        chunk_id = state.meta.chunk_id
        if source is not None:
            self._used[source] -= nbytes
            del self._lru[source][chunk_id]
            if state.pins:
                self._pinned[source] -= nbytes
        self._used[target] += nbytes
        self._lru[target][chunk_id] = state
        if self._tenants:
            tenant = self._tenants.get(chunk_id)
            if tenant is not None:
                if source is not None:
                    self._tenant_used[(tenant, source)] -= nbytes
                    if state.pins:
                        self._tenant_pinned[(tenant, source)] -= nbytes
                self._tenant_used[(tenant, target)] += nbytes
                if state.pins:
                    self._tenant_pinned[(tenant, target)] += nbytes
        if eviction:
            # Spilled data was the *least* recently used of its old space; it
            # enters the lower space first in line for the next spill, not as
            # freshly used data would.
            self._lru[target].move_to_end(chunk_id, last=False)
        if state.pins:
            self._pinned[target] += nbytes
        state.space = target
        if target.kind is MemoryKind.GPU:
            peak = self.stats.peak_gpu_bytes
            peak[target.device_index] = max(
                peak.get(target.device_index, 0), self._used[target]
            )

        if source is None:
            return []  # fresh allocation from the pool: no data to move

        transfers = self._transfer_requests(source, target, state.meta)
        if eviction:
            if target.kind is MemoryKind.HOST:
                self.stats.evictions_to_host += 1
            elif target.kind is MemoryKind.DISK:
                self.stats.evictions_to_disk += 1
            if self._in_reserve:
                self.stats.chunks_preevicted += 1
            else:
                self.stats.staging_evictions += 1
            # An evicted chunk is no longer prepared for its consumer.
            self._prepared.discard(chunk_id)
            for resource, amount, label in transfers:
                resource.request(amount, lambda: None, label=label)
            return []
        return transfers

    def _disk_write_requests(self, meta: ChunkMeta):
        """The requests that write one chunk to the disk tier."""
        nbytes = meta.nbytes
        self.stats.bytes_to_disk += nbytes
        if self.disk_model is None:
            self.stats.disk_stored_bytes_written += nbytes
            return [(self.resources.disk, nbytes, "spill to disk")]
        stored = self.disk_model.stored_bytes(meta.chunk_id, meta.dtype, nbytes)
        self.stats.disk_stored_bytes_written += stored
        return [
            (self.resources.compress, nbytes, "compress"),
            (self.resources.disk_write, stored, "spill to disk"),
        ]

    def _disk_read_requests(self, meta: ChunkMeta):
        """The requests that read one chunk back from the disk tier."""
        nbytes = meta.nbytes
        self.stats.bytes_from_disk += nbytes
        if self.disk_model is None:
            self.stats.disk_stored_bytes_read += nbytes
            return [(self.resources.disk, nbytes, "read from disk")]
        stored = self.disk_model.stored_bytes(meta.chunk_id, meta.dtype, nbytes)
        self.stats.disk_stored_bytes_read += stored
        return [
            (self.resources.disk_read, stored, "read from disk"),
            (self.resources.decompress, nbytes, "decompress"),
        ]

    def _transfer_requests(self, source: MemorySpace, target: MemorySpace, meta: ChunkMeta):
        """The (resource, bytes, label) requests implied by moving a chunk."""
        pair = (source.kind, target.kind)
        nbytes = meta.nbytes
        requests = []
        if pair == (MemoryKind.GPU, MemoryKind.HOST):
            self.stats.bytes_from_gpu += nbytes
            requests.append((self.resources.pcie, nbytes, "spill d2h"))
        elif pair == (MemoryKind.HOST, MemoryKind.GPU):
            self.stats.bytes_to_gpu += nbytes
            requests.append((self.resources.pcie, nbytes, "stage h2d"))
        elif pair == (MemoryKind.HOST, MemoryKind.DISK):
            requests.extend(self._disk_write_requests(meta))
        elif pair == (MemoryKind.DISK, MemoryKind.HOST):
            requests.extend(self._disk_read_requests(meta))
        elif pair == (MemoryKind.GPU, MemoryKind.DISK):
            self.stats.bytes_from_gpu += nbytes
            requests.append((self.resources.pcie, nbytes, "spill d2h"))
            requests.extend(self._disk_write_requests(meta))
        elif pair == (MemoryKind.DISK, MemoryKind.GPU):
            requests.extend(self._disk_read_requests(meta))
            self.stats.bytes_to_gpu += nbytes
            requests.append((self.resources.pcie, nbytes, "stage h2d"))
        elif pair == (MemoryKind.GPU, MemoryKind.GPU):
            requests.append((self.resources.pcie, nbytes, "p2p"))
        # HOST -> HOST (and identical spaces) move no data.
        return requests
