"""Checkpoint file format for :meth:`Context.checkpoint` / ``restore``.

The on-disk layout is a bloscpack-style single-file container: a fixed magic
header, the per-chunk compressed payloads back to back, and a JSON *footer*
index that records, for every chunk, its byte offset, compressed length,
raw size, CRC-32 checksum and region — plus per-array metadata (shape,
dtype, name and the serialised data distribution) so a restore can rebuild
the arrays without any out-of-band information::

    +--------+---------+---------+-----+---------------+----------------+
    | magic  | chunk 0 | chunk 1 | ... | JSON footer   | len | magic    |
    | 8 B    | zlib    | zlib    |     | (manifest)    | u64 | 8 B      |
    +--------+---------+---------+-----+---------------+----------------+

The trailer (footer length + repeated magic) lets a reader seek straight to
the index from the end of the file; every payload is independently
decompressible, which is what lineage recovery relies on — a durable chunk
is loaded back by seeking to its offset, nothing else is touched.

Payloads are ``zlib``-compressed (stdlib; the simulated codec lanes charge
virtual time separately, see :mod:`repro.perfmodel.compression`).  In
simulate mode no real bytes exist, so payloads are empty and the manifest
records the cost-model's *modelled* stored size instead.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..errors import CheckpointError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_ZLIB_LEVEL",
    "encode_distribution",
    "decode_distribution",
    "compress_payload",
    "write_checkpoint",
    "read_manifest",
    "load_chunk",
]

#: 8-byte magic identifying a repro checkpoint container.
CHECKPOINT_MAGIC = b"RPROCKP1"
#: Bumped on any incompatible layout change; readers reject other versions.
CHECKPOINT_VERSION = 1
#: zlib level for chunk payloads: fast, deterministic across runs.
CHECKPOINT_ZLIB_LEVEL = 1

_TRAILER = struct.Struct("<Q8s")


# --------------------------------------------------------------------------- #
# distribution (de)serialisation
# --------------------------------------------------------------------------- #
def encode_distribution(distribution) -> Dict[str, object]:
    """Serialise a data distribution as ``{"type": name, "params": {...}}``.

    Every shipped distribution is a frozen dataclass whose fields are ints
    or int tuples, so ``dataclasses.asdict`` round-trips through JSON.
    """
    params = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in dataclasses.asdict(distribution).items()
    }
    return {"type": type(distribution).__name__, "params": params}


def decode_distribution(spec: Dict[str, object]):
    """Rebuild a distribution from :func:`encode_distribution` output."""
    from ..core import distributions as _dist

    name = spec.get("type")
    cls = getattr(_dist, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, _dist.DataDistribution)):
        raise CheckpointError(f"checkpoint references unknown distribution {name!r}")
    params = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in dict(spec.get("params", {})).items()
    }
    try:
        return cls(**params)
    except TypeError as exc:
        raise CheckpointError(f"bad parameters for distribution {name!r}: {exc}") from None


# --------------------------------------------------------------------------- #
# writer
# --------------------------------------------------------------------------- #
def compress_payload(buffer: np.ndarray) -> bytes:
    """Compress one chunk buffer into its on-disk payload."""
    raw = np.ascontiguousarray(buffer).tobytes()
    return zlib.compress(raw, CHECKPOINT_ZLIB_LEVEL)


def write_checkpoint(path: str, manifest: Dict[str, object]) -> Dict[str, object]:
    """Write payloads and footer index to ``path``; returns the manifest.

    ``manifest["arrays"][i]["chunks"][j]`` entries may carry a ``"payload"``
    bytes value; the writer pops it, appends it to the file, and fills in the
    entry's ``offset`` / ``length`` / ``crc32`` fields in place.  Entries
    without a payload (simulate mode) get ``length == 0``.
    """
    with open(path, "wb") as fh:
        fh.write(CHECKPOINT_MAGIC)
        offset = len(CHECKPOINT_MAGIC)
        for array_entry in manifest["arrays"]:
            for entry in array_entry["chunks"]:
                payload = entry.pop("payload", b"")
                entry["offset"] = offset
                entry["length"] = len(payload)
                entry["crc32"] = zlib.crc32(payload) & 0xFFFFFFFF
                fh.write(payload)
                offset += len(payload)
        footer = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
        fh.write(footer)
        fh.write(_TRAILER.pack(len(footer), CHECKPOINT_MAGIC))
    return manifest


# --------------------------------------------------------------------------- #
# reader
# --------------------------------------------------------------------------- #
def read_manifest(path: str) -> Dict[str, object]:
    """Read and validate the footer index of a checkpoint file."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(CHECKPOINT_MAGIC))
            if head != CHECKPOINT_MAGIC:
                raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
            fh.seek(0, 2)
            size = fh.tell()
            if size < len(CHECKPOINT_MAGIC) + _TRAILER.size:
                raise CheckpointError(f"{path}: truncated checkpoint file")
            fh.seek(size - _TRAILER.size)
            footer_len, tail_magic = _TRAILER.unpack(fh.read(_TRAILER.size))
            if tail_magic != CHECKPOINT_MAGIC:
                raise CheckpointError(f"{path}: truncated checkpoint (bad trailer)")
            footer_start = size - _TRAILER.size - footer_len
            if footer_start < len(CHECKPOINT_MAGIC):
                raise CheckpointError(f"{path}: corrupt footer length")
            fh.seek(footer_start)
            footer = fh.read(footer_len)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    try:
        manifest = json.loads(footer.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt checkpoint index: {exc}") from None
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return manifest


def load_chunk(
    path: str,
    entry: Dict[str, object],
    dtype,
    shape: Tuple[int, ...],
) -> np.ndarray:
    """Load one chunk payload back as a writable NumPy array.

    Verifies the payload's CRC-32 against the index before decompressing,
    so silent on-disk corruption surfaces as :class:`CheckpointError`
    instead of wrong numbers.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(int(entry["offset"]))
            payload = fh.read(int(entry["length"]))
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    if len(payload) != int(entry["length"]):
        raise CheckpointError(f"{path}: truncated chunk payload at {entry['offset']}")
    if zlib.crc32(payload) & 0xFFFFFFFF != int(entry["crc32"]):
        raise CheckpointError(
            f"{path}: checksum mismatch for chunk {entry.get('chunk_id')} "
            "(corrupt payload)"
        )
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise CheckpointError(f"{path}: undecompressible chunk payload: {exc}") from None
    data = np.frombuffer(raw, dtype=dtype)
    expected = int(np.prod(shape)) if shape else 1
    if data.size != expected:
        raise CheckpointError(
            f"{path}: chunk {entry.get('chunk_id')} decodes to {data.size} "
            f"elements, expected {expected}"
        )
    return data.reshape(shape).copy()


def region_slices(region: List[List[int]]) -> Tuple[slice, ...]:
    """Slices selecting a serialised ``[lo, hi]`` region inside its array."""
    lo, hi = region
    return tuple(slice(int(a), int(b)) for a, b in zip(lo, hi))


def region_shape(region: List[List[int]]) -> Tuple[int, ...]:
    """Shape of a serialised ``[lo, hi]`` region."""
    lo, hi = region
    return tuple(int(b) - int(a) for a, b in zip(lo, hi))


def make_loader(path: str, entry: Dict[str, object], dtype, shape: Tuple[int, ...]):
    """A zero-argument loader closure for :meth:`LineageTracker.note_durable`."""

    def _load() -> np.ndarray:
        return load_chunk(path, entry, dtype, shape)

    return _load


def chunk_entries(manifest: Dict[str, object]):
    """Iterate ``(array_entry, chunk_entry)`` pairs of a manifest."""
    for array_entry in manifest["arrays"]:
        for entry in array_entry["chunks"]:
            yield array_entry, entry
