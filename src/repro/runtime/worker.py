"""One worker node: storage, memory manager, executors and scheduler.

In the paper a worker is a separate MPI process on its own node; here it is a
plain object bundling the per-node pieces of the runtime.  The interfaces
between driver and worker (submit a DAG fragment, report completion) are the
same ones an RPC layer would expose.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import tasks as T
from ..hardware.topology import Node
from ..perfmodel.costs import OverheadModel
from ..simulator.engine import Engine
from ..simulator.trace import Trace
from .executors import TaskExecutor
from .memory import MemoryManager
from .network import NetworkFabric
from .resources import WorkerResources
from .scheduler import Scheduler, DEFAULT_STAGE_THRESHOLD
from .storage import ChunkStorage

__all__ = ["Worker"]


class Worker:
    """All per-node runtime state for one worker."""

    def __init__(
        self,
        runtime: "object",
        node: Node,
        engine: Engine,
        trace: Trace,
        fabric: NetworkFabric,
        kernel_registry: Dict[str, object],
        overheads: OverheadModel,
        functional: bool,
        stage_threshold: int = DEFAULT_STAGE_THRESHOLD,
        memory_capacities=None,
        scheduler_policy=None,
        chunk_tenants=None,
    ):
        self.node = node
        self.worker_id = node.worker
        self.resources = WorkerResources(engine, node, overheads, trace)
        self.storage = ChunkStorage(materialize=functional)
        self.memory = MemoryManager(
            node,
            self.resources,
            capacities=memory_capacities,
            chunk_tenants=chunk_tenants,
        )
        self.executor = TaskExecutor(
            node=node,
            resources=self.resources,
            storage=self.storage,
            fabric=fabric,
            kernel_registry=kernel_registry,
            overheads=overheads,
            functional=functional,
            memory=self.memory,
        )
        self.scheduler = Scheduler(
            runtime=runtime,
            worker=self.worker_id,
            resources=self.resources,
            memory=self.memory,
            executor=self.executor,
            stage_threshold=stage_threshold,
            policy=scheduler_policy,
        )

    # ------------------------------------------------------------------ #
    # driver-facing interface
    # ------------------------------------------------------------------ #
    def submit(self, tasks: List[T.Task]) -> None:
        """Accept a DAG fragment from the driver (invoked through the RPC layer)."""
        for task in tasks:
            if isinstance(task, T.CreateChunkTask):
                # Chunk metadata must be known to the memory manager before any
                # dependent task computes its staging footprint.
                if not self.memory.knows(task.chunk.chunk_id):
                    self.memory.register(task.chunk)
        self.scheduler.submit(tasks)

    def pending_tasks(self) -> int:
        """Tasks of this worker neither finished nor staged."""
        return self.scheduler.pending_tasks()
