"""Instantiated cluster topology: nodes, devices and memory spaces.

A :class:`~repro.hardware.specs.ClusterSpec` is a description; a
:class:`Cluster` is the instantiated topology the runtime operates on.  Every
worker node owns one host-memory space, one disk space and one GPU-memory
space per GPU.  Chunks always live in exactly one memory space at a time (plus
possibly stale spilled copies that the memory manager tracks separately).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Tuple

from .specs import ClusterSpec, GPUSpec, NodeSpec

__all__ = [
    "MemoryKind",
    "MemorySpace",
    "DeviceId",
    "WorkerId",
    "Device",
    "Node",
    "Cluster",
]

WorkerId = int


class MemoryKind(enum.Enum):
    """Level of the memory hierarchy a chunk can be materialised in."""

    GPU = "gpu"
    HOST = "host"
    DISK = "disk"

    @property
    def level(self) -> int:
        """Spill level: lower is faster/closer to the GPU."""
        return {"gpu": 0, "host": 1, "disk": 2}[self.value]


@dataclass(frozen=True)
class MemorySpace:
    """One addressable memory pool: (worker, kind, device index within the worker)."""

    worker: WorkerId
    kind: MemoryKind
    device_index: int = 0

    def __post_init__(self) -> None:
        # Memory spaces key every per-space table in the memory manager, so
        # their hash sits on the staging hot path: precompute it once instead
        # of rebuilding a field tuple (and re-hashing the enum) per lookup.
        object.__setattr__(
            self, "_hash", hash((self.worker, self.kind, self.device_index))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.kind is MemoryKind.GPU:
            return f"worker{self.worker}:gpu{self.device_index}"
        return f"worker{self.worker}:{self.kind.value}"


@dataclass(frozen=True)
class DeviceId:
    """Global identifier of one GPU in the cluster."""

    worker: WorkerId
    local_index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.worker, self.local_index)))

    def __hash__(self) -> int:
        return self._hash

    @cached_property
    def memory_space(self) -> MemorySpace:
        """The GPU memory space of this device (memoised: spaces are interned
        per device id rather than reconstructed on every staging decision)."""
        return MemorySpace(self.worker, MemoryKind.GPU, self.local_index)

    def __str__(self) -> str:
        return f"gpu({self.worker}.{self.local_index})"


@dataclass(frozen=True)
class Device:
    """One simulated GPU with its spec and identifiers."""

    device_id: DeviceId
    spec: GPUSpec

    @property
    def worker(self) -> WorkerId:
        """The worker (node) owning this device."""
        return self.device_id.worker

    @property
    def memory_space(self) -> MemorySpace:
        """The GPU memory space of this device."""
        return self.device_id.memory_space


@dataclass(frozen=True)
class Node:
    """One worker node with its local devices."""

    worker: WorkerId
    spec: NodeSpec
    devices: Tuple[Device, ...]

    @property
    def host_space(self) -> MemorySpace:
        """This node's host-memory space."""
        return MemorySpace(self.worker, MemoryKind.HOST)

    @property
    def disk_space(self) -> MemorySpace:
        """This node's disk space."""
        return MemorySpace(self.worker, MemoryKind.DISK)


class Cluster:
    """The instantiated topology: workers, devices and lookup helpers."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.nodes: List[Node] = []
        for worker in range(spec.node_count):
            devices = tuple(
                Device(DeviceId(worker, i), gpu_spec)
                for i, gpu_spec in enumerate(spec.node.gpus)
            )
            self.nodes.append(Node(worker, spec.node, devices))
        self._device_by_id: Dict[DeviceId, Device] = {
            dev.device_id: dev for node in self.nodes for dev in node.devices
        }
        #: Permanently failed devices: excluded from ``devices()`` /
        #: ``device_ids()`` so planning and placement only see survivors.
        #: Direct lookups (``device()``) still resolve failed devices — the
        #: recovery machinery needs their specs and memory spaces.
        self._failed: set = set()

    # ------------------------------------------------------------------ #
    # device failure (fault tolerance)
    # ------------------------------------------------------------------ #
    def mark_failed(self, device_id: DeviceId) -> None:
        """Remove a GPU from the healthy topology (permanent device failure)."""
        if device_id not in self._device_by_id:
            raise KeyError(f"unknown device {device_id}")
        self._failed.add(device_id)

    def is_failed(self, device_id: DeviceId) -> bool:
        """True once ``mark_failed`` has been called for this device."""
        return device_id in self._failed

    @property
    def failed_devices(self) -> frozenset:
        """The set of permanently failed device ids."""
        return frozenset(self._failed)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    @property
    def worker_count(self) -> int:
        """Number of worker nodes."""
        return len(self.nodes)

    def node(self, worker: WorkerId) -> Node:
        """The :class:`Node` of one worker id."""
        return self.nodes[worker]

    def device(self, device_id: DeviceId) -> Device:
        """The :class:`Device` of one device id."""
        return self._device_by_id[device_id]

    def devices(self) -> List[Device]:
        """All healthy GPUs in the cluster ordered (worker, local index)."""
        if not self._failed:
            return [dev for node in self.nodes for dev in node.devices]
        return [
            dev
            for node in self.nodes
            for dev in node.devices
            if dev.device_id not in self._failed
        ]

    def device_ids(self) -> List[DeviceId]:
        """Every healthy GPU in the cluster, in (worker, local index) order."""
        return [dev.device_id for dev in self.devices()]

    @property
    def device_count(self) -> int:
        """Total healthy GPUs in the cluster."""
        return len(self._device_by_id) - len(self._failed)

    def iter_memory_spaces(self) -> Iterator[MemorySpace]:
        """Every memory space of the cluster (GPU, host and disk per node)."""
        for node in self.nodes:
            for dev in node.devices:
                yield dev.memory_space
            yield node.host_space
            yield node.disk_space

    def capacity(self, space: MemorySpace) -> int:
        """Capacity in bytes of one memory space."""
        node = self.node(space.worker)
        if space.kind is MemoryKind.GPU:
            return node.spec.gpus[space.device_index].memory_bytes
        if space.kind is MemoryKind.HOST:
            return node.spec.host_memory_bytes
        return node.spec.disk.capacity_bytes

    def same_node(self, a: MemorySpace, b: MemorySpace) -> bool:
        """True when both devices live on the same worker node."""
        return a.worker == b.worker

    def describe(self) -> str:
        """One-line human-readable description of the topology."""
        return self.spec.describe()
