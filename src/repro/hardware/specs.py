"""Hardware specifications for the simulated cluster.

All values are plain floats/ints in SI units (bytes, FLOP/s, bytes/s,
seconds).  The presets mirror the evaluation platform of the paper (Sec. 4.1):
Azure NC24rsV2 nodes with four Tesla P100 GPUs on PCIe 3.0 x16 and InfiniBand
FDR between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "DiskSpec",
    "InterconnectSpec",
    "NodeSpec",
    "ClusterSpec",
    "P100",
    "E5_2690",
    "AZURE_NC24RSV2_DISK",
    "INFINIBAND_FDR",
    "azure_nc24rsv2",
]

GB = 1024 ** 3
GIGA = 1e9


@dataclass(frozen=True)
class GPUSpec:
    """A discrete GPU accelerator.

    ``peak_flops`` and ``mem_bandwidth`` feed the roofline kernel cost model;
    ``memory_bytes`` bounds the memory manager's GPU pool; ``launch_latency``
    is the fixed per-kernel-launch cost.
    """

    name: str
    memory_bytes: int
    peak_flops: float
    mem_bandwidth: float
    pcie_bandwidth: float
    launch_latency: float = 10e-6
    copy_engines: int = 2

    def scaled(self, factor: float) -> "GPUSpec":
        """A GPU with compute/bandwidth scaled by ``factor`` (ablations)."""
        return replace(
            self,
            peak_flops=self.peak_flops * factor,
            mem_bandwidth=self.mem_bandwidth * factor,
        )


@dataclass(frozen=True)
class CPUSpec:
    """The host CPU: used for the NumPy baseline and CPU-side tasks."""

    name: str
    cores: int
    peak_flops: float
    mem_bandwidth: float


@dataclass(frozen=True)
class DiskSpec:
    """Local scratch storage used as the lowest spill tier.

    ``read_bandwidth``/``write_bandwidth`` are the per-direction sequential
    throughputs of the device (SSDs are asymmetric); the compressed disk
    tier (``Context(disk=True)``) models chunks as (de)compressed on the
    host CPU while they stream to/from disk, so ``compress_throughput`` /
    ``decompress_throughput`` are in *uncompressed* bytes per second.
    """

    name: str
    capacity_bytes: int
    read_bandwidth: float
    write_bandwidth: float
    latency: float = 100e-6
    #: host-side compression speed in uncompressed bytes/s (LZ4-class)
    compress_throughput: float = 1.8e9
    #: host-side decompression speed in uncompressed bytes/s
    decompress_throughput: float = 3.6e9


@dataclass(frozen=True)
class InterconnectSpec:
    """Network between nodes (the paper assumes InfiniBand FDR)."""

    name: str
    bandwidth: float
    latency: float


@dataclass(frozen=True)
class NodeSpec:
    """One worker node: CPU + host memory + disk + a set of identical GPUs."""

    name: str
    cpu: CPUSpec
    host_memory_bytes: int
    disk: DiskSpec
    gpus: List[GPUSpec] = field(default_factory=list)
    pcie_bandwidth: float = 13e9
    pcie_latency: float = 10e-6
    p2p_bandwidth: float = 10e9

    @property
    def gpu_count(self) -> int:
        """GPUs on this node."""
        return len(self.gpus)

    def with_gpus(self, count: int) -> "NodeSpec":
        """Copy of this node spec with a different GPU count."""
        if not self.gpus:
            raise ValueError("node spec has no GPU template")
        return replace(self, gpus=[self.gpus[0]] * count)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``node_count`` nodes."""

    name: str
    node: NodeSpec
    node_count: int
    interconnect: InterconnectSpec

    @property
    def total_gpus(self) -> int:
        """GPUs across the whole cluster."""
        return self.node_count * self.node.gpu_count

    @property
    def gpu_memory_bytes(self) -> int:
        """Combined GPU memory across the whole cluster."""
        return sum(g.memory_bytes for g in self.node.gpus) * self.node_count

    @property
    def host_memory_bytes(self) -> int:
        """Combined host memory of all nodes in bytes."""
        return self.node.host_memory_bytes * self.node_count

    def describe(self) -> str:
        """One-line human-readable description of the cluster."""
        return (
            f"{self.node_count} node(s) x {self.node.gpu_count} GPU(s) "
            f"({self.node.gpus[0].name if self.node.gpus else 'no GPU'})"
        )


# --------------------------------------------------------------------------- #
# Presets matching the paper's evaluation platform (Sec. 4.1)
# --------------------------------------------------------------------------- #

#: NVIDIA Tesla P100 (PCIe, 16 GB): ~9.3 TFLOP/s single precision, 732 GB/s HBM2.
P100 = GPUSpec(
    name="Tesla P100 16GB",
    memory_bytes=16 * GB,
    peak_flops=9.3e12,
    mem_bandwidth=732e9,
    pcie_bandwidth=13e9,
)

#: Intel Xeon E5-2690 v4-ish host CPU with 24 usable cores.
E5_2690 = CPUSpec(
    name="Intel E5-2690 (24 cores)",
    cores=24,
    peak_flops=0.8e12,
    mem_bandwidth=68e9,
)

#: 3 TB local SSD scratch; the paper observes disk spilling is bandwidth-bound.
AZURE_NC24RSV2_DISK = DiskSpec(
    name="local SSD (3TB)",
    capacity_bytes=3 * 1024 * GB,
    read_bandwidth=0.75e9,
    write_bandwidth=0.5e9,
)

#: InfiniBand FDR: ~7 GB/s effective (Sec. 4.5).
INFINIBAND_FDR = InterconnectSpec(name="InfiniBand FDR", bandwidth=7e9, latency=2e-6)


def azure_nc24rsv2(
    nodes: int = 1,
    gpus_per_node: int = 4,
    host_memory_bytes: int = 448 * GB,
) -> ClusterSpec:
    """The paper's evaluation platform: Azure NC24rsV2 nodes (Sec. 4.1)."""
    node = NodeSpec(
        name="Azure NC24rsV2",
        cpu=E5_2690,
        host_memory_bytes=host_memory_bytes,
        disk=AZURE_NC24RSV2_DISK,
        gpus=[P100] * gpus_per_node,
        pcie_bandwidth=13e9,
        p2p_bandwidth=10e9,
    )
    return ClusterSpec(
        name=f"azure-nc24rsv2-{nodes}x{gpus_per_node}",
        node=node,
        node_count=nodes,
        interconnect=INFINIBAND_FDR,
    )
