"""Simulated cluster hardware: GPU/node/cluster specifications and memory spaces.

The paper evaluates Lightning on Microsoft Azure ``NC24rsV2`` nodes (Sec. 4.1):
an Intel E5-2690 CPU (24 cores), 448 GB of host memory, 3 TB of local SSD and
four NVIDIA Tesla P100 GPUs (16 GB each), connected with InfiniBand FDR.  This
package describes that hardware as plain data so the rest of the system
(planner, memory manager, performance model, discrete-event simulator) can run
without real GPUs.
"""

from .specs import (
    GPUSpec,
    NodeSpec,
    ClusterSpec,
    InterconnectSpec,
    CPUSpec,
    DiskSpec,
    P100,
    E5_2690,
    AZURE_NC24RSV2_DISK,
    INFINIBAND_FDR,
    azure_nc24rsv2,
)
from .topology import DeviceId, WorkerId, MemorySpace, MemoryKind, Cluster, Node, Device

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "DiskSpec",
    "NodeSpec",
    "ClusterSpec",
    "InterconnectSpec",
    "P100",
    "E5_2690",
    "AZURE_NC24RSV2_DISK",
    "INFINIBAND_FDR",
    "azure_nc24rsv2",
    "DeviceId",
    "WorkerId",
    "MemorySpace",
    "MemoryKind",
    "Cluster",
    "Node",
    "Device",
]
