"""Exception hierarchy for the reproduction.

Every error the library raises deliberately derives from :class:`ReproError`,
so applications (and the CLI) can catch one type and print an actionable
message instead of a traceback.  The concrete classes also co-inherit from
``RuntimeError`` so code (and tests) written against the historical
``RuntimeError``-based failures keeps working.

* :class:`PlanningError` — the planner cannot build a valid execution plan
  (bad launch arguments, non-covering distributions, unsatisfiable layouts).
* :class:`ArgumentTypeError` / :class:`ArgumentValueError` — argument errors
  on the driver API (``Context.launch``, ``redistribute``); they co-inherit
  the builtin ``TypeError``/``ValueError`` callers historically caught.
* :class:`FaultError` — an *injected* fault became fatal: a transfer exhausted
  its retry budget, a task was scheduled onto a blacklisted device, or
  recovery could not rematerialize a lost chunk.
* :class:`SimulationStalled` — the event queue drained while tasks were still
  outstanding (a latent deadlock); the message lists the stuck tasks and the
  resources they wait on.
* :class:`CheckpointError` — a checkpoint file is missing, truncated, corrupt
  (checksum mismatch), or written by an incompatible format version.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PlanningError",
    "ArgumentTypeError",
    "ArgumentValueError",
    "FaultError",
    "SimulationStalled",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for every deliberate error raised by the library."""


class PlanningError(ReproError, RuntimeError):
    """The planner cannot construct a valid plan for the requested operation."""


class ArgumentTypeError(PlanningError, TypeError):
    """A driver-API argument has the wrong type (e.g. a scalar where a
    :class:`~repro.core.array.DistributedArray` is required)."""


class ArgumentValueError(PlanningError, ValueError):
    """A driver-API argument has an invalid value (e.g. a distribution that
    does not cover the array domain)."""


class FaultError(ReproError, RuntimeError):
    """An injected fault became fatal (retries exhausted, lineage gap,
    blacklisted device)."""


class SimulationStalled(ReproError, RuntimeError):
    """The simulator ran out of events while tasks were still pending."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file cannot be read back: bad magic, truncated footer,
    per-chunk checksum mismatch, or an unknown distribution type."""
