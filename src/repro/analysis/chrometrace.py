"""Timeline export and overlap analysis for simulator traces.

Every simulated resource (GPU compute engines, PCIe buses, NICs, disks, the
driver's planning thread, each worker's scheduler) records the intervals it
was busy.  This module turns that record into:

* Chrome trace-event JSON (``chrome://tracing`` / Perfetto compatible), so a
  run of the reproduction can be inspected on the same kind of timeline the
  paper's authors used to argue that data movement overlaps kernel execution;
* utilisation and overlap reports used by tests and EXPERIMENTS.md to assert
  the overlap claim quantitatively.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..simulator.trace import Trace

__all__ = [
    "trace_to_chrome_events",
    "trace_to_chrome_json",
    "utilisation_report",
    "overlap_report",
    "OverlapReport",
]

#: Seconds → microseconds (the unit Chrome trace events use).
_US = 1e6


def _split_resource(resource: str) -> tuple:
    """Split a resource name like ``w0.gpu1.compute`` into (process, thread)."""
    if "." in resource:
        process, thread = resource.split(".", 1)
    else:
        process, thread = resource, resource
    return process, thread


def trace_to_chrome_events(trace: Trace) -> List[Dict[str, object]]:
    """Convert a trace to a list of Chrome complete ('X') events.

    Resources map to process/thread rows: the part of the resource name before
    the first dot (the worker, or ``driver``) becomes the process and the rest
    becomes the thread, so the timeline groups naturally per node.
    """
    events: List[Dict[str, object]] = []
    process_ids: Dict[str, int] = {}
    thread_ids: Dict[tuple, int] = {}
    for interval in sorted(trace.intervals, key=lambda iv: (iv.resource, iv.start)):
        process, thread = _split_resource(interval.resource)
        pid = process_ids.setdefault(process, len(process_ids))
        tid = thread_ids.setdefault((process, thread), len(thread_ids))
        events.append(
            {
                "name": interval.label or interval.resource,
                "cat": interval.resource,
                "ph": "X",
                "ts": interval.start * _US,
                "dur": max(interval.duration, 0.0) * _US,
                "pid": pid,
                "tid": tid,
                "args": {"resource": interval.resource},
            }
        )
    # Metadata events give the rows readable names in the viewer.
    for process, pid in process_ids.items():
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": process}}
        )
    for (process, thread), tid in thread_ids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": process_ids[process], "tid": tid,
             "args": {"name": thread}}
        )
    return events


def trace_to_chrome_json(trace: Trace, path: Optional[str] = None) -> str:
    """Serialise the trace to Chrome trace JSON; optionally write it to ``path``."""
    document = {"traceEvents": trace_to_chrome_events(trace), "displayTimeUnit": "ms"}
    text = json.dumps(document, indent=2)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def utilisation_report(trace: Trace, makespan: float) -> Dict[str, float]:
    """Fraction of ``makespan`` each resource was busy (0 when makespan is 0)."""
    if makespan <= 0:
        return {name: 0.0 for name in trace.summary()}
    return {
        name: busy / makespan for name, busy in sorted(trace.summary().items())
    }


@dataclass(frozen=True)
class OverlapReport:
    """How much two groups of resources were busy at the same time."""

    busy_a: float
    busy_b: float
    overlap: float

    @property
    def overlap_fraction(self) -> float:
        """Overlap relative to the smaller of the two busy times (0 when idle)."""
        smallest = min(self.busy_a, self.busy_b)
        if smallest <= 0:
            return 0.0
        return self.overlap / smallest


def overlap_report(
    trace: Trace,
    resources_a: Sequence[str],
    resources_b: Sequence[str],
) -> OverlapReport:
    """Overlap between two groups of resources (e.g. GPU compute vs. PCIe).

    Resource names may be given exactly or as prefixes; a trace resource
    belongs to a group when it equals or starts with one of the group's names.
    """

    def merged(names: Sequence[str]) -> List[tuple]:
        intervals = [
            (iv.start, iv.end)
            for iv in trace.intervals
            if any(iv.resource == n or iv.resource.startswith(n) for n in names)
        ]
        intervals.sort()
        out: List[tuple] = []
        for start, end in intervals:
            if out and start <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], end))
            else:
                out.append((start, end))
        return out

    def total(intervals: List[tuple]) -> float:
        return sum(end - start for start, end in intervals)

    merged_a, merged_b = merged(resources_a), merged(resources_b)
    overlap = 0.0
    i = j = 0
    while i < len(merged_a) and j < len(merged_b):
        a0, a1 = merged_a[i]
        b0, b1 = merged_b[j]
        lo, hi = max(a0, b0), min(a1, b1)
        if hi > lo:
            overlap += hi - lo
        if a1 < b1:
            i += 1
        else:
            j += 1
    return OverlapReport(busy_a=total(merged_a), busy_b=total(merged_b), overlap=overlap)
