"""Offline analysis of execution plans and simulator traces.

The paper visualises the planner's output as one large task DAG (Fig. 4) and
argues for its central performance claim — that scheduling, data movement and
kernel execution overlap — from the timeline of the runtime.  This package
provides both views for the reproduction:

* :mod:`repro.analysis.plangraph` rebuilds the task DAG from the plans a
  :class:`~repro.core.context.Context` recorded (``record_plans=True``),
  exposes it as a :class:`networkx.DiGraph`, renders GraphViz DOT, and
  computes structural metrics (task counts, critical path, communication
  volume).
* :mod:`repro.analysis.chrometrace` converts the simulator's resource trace
  into the Chrome trace-event format (load it in ``chrome://tracing`` or
  Perfetto) and computes per-resource utilisation and overlap reports.
"""

from .plangraph import PlanGraph, plan_to_dot
from .chrometrace import (
    OverlapReport,
    trace_to_chrome_events,
    trace_to_chrome_json,
    utilisation_report,
    overlap_report,
)

__all__ = [
    "PlanGraph",
    "plan_to_dot",
    "OverlapReport",
    "trace_to_chrome_events",
    "trace_to_chrome_json",
    "utilisation_report",
    "overlap_report",
]
