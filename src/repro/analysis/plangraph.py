"""Task-DAG reconstruction and analysis (the Fig. 4 view of an application).

The planner emits one :class:`~repro.core.tasks.ExecutionPlan` per driver
operation and stitches consecutive plans together through dependencies on
earlier task ids.  :class:`PlanGraph` merges any number of recorded plans back
into the single large DAG the paper draws, so tests and users can inspect what
the planner actually built: how many tasks of each kind, how much data is
copied or sent, how long the critical path is, and whether the dependency
structure really enforces sequential consistency between conflicting launches.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from ..core.tasks import ExecutionPlan, Task, TaskId

__all__ = ["PlanGraph", "plan_to_dot"]


#: Fill colours used for DOT output, one per task kind (purely cosmetic).
_KIND_COLORS: Mapping[str, str] = {
    "launch": "lightblue",
    "copy": "lightyellow",
    "send": "lightpink",
    "recv": "lightpink",
    "reduce": "palegreen",
    "combine": "gray90",
    "createchunk": "white",
    "deletechunk": "white",
    "fill": "white",
    "download": "lavender",
}


@dataclass
class PlanGraph:
    """The merged task DAG of one or more execution plans."""

    tasks: Dict[TaskId, Task] = field(default_factory=dict)
    #: Edges ``(predecessor, successor)`` — includes cross-plan dependencies
    #: whenever both endpoints are part of the recorded plans.
    edges: List[Tuple[TaskId, TaskId]] = field(default_factory=list)
    #: Dependencies whose predecessor was never recorded (e.g. plans submitted
    #: before recording started); kept for diagnostics.
    dangling_deps: List[Tuple[TaskId, TaskId]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_plans(cls, plans: Iterable[ExecutionPlan]) -> "PlanGraph":
        """Merge ``plans`` (in submission order) into one graph."""
        graph = cls()
        for plan in plans:
            for task in plan.all_tasks():
                graph.add_task(task)
        graph._link()
        return graph

    @classmethod
    def from_context(cls, ctx: "object") -> "PlanGraph":
        """Build the graph from a context created with ``record_plans=True``."""
        plans = getattr(ctx, "recorded_plans", None)
        if not plans:
            raise ValueError(
                "no recorded plans: create the Context with record_plans=True "
                "and submit work before building a PlanGraph"
            )
        return cls.from_plans(plans)

    def add_task(self, task: Task) -> None:
        """Add one task (and its dependency edges) to the merged DAG."""
        if task.task_id in self.tasks:
            raise ValueError(f"task {task.task_id} added twice")
        self.tasks[task.task_id] = task

    def _link(self) -> None:
        self.edges.clear()
        self.dangling_deps.clear()
        for task in self.tasks.values():
            for dep in task.deps:
                if dep in self.tasks:
                    self.edges.append((dep, task.task_id))
                else:
                    self.dangling_deps.append((dep, task.task_id))

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tasks)

    def task_counts(self) -> Dict[str, int]:
        """Number of tasks per kind (launch / copy / send / recv / ...)."""
        return dict(Counter(task.kind for task in self.tasks.values()))

    def tasks_per_worker(self) -> Dict[int, int]:
        """Number of tasks assigned to each worker."""
        return dict(Counter(task.worker for task in self.tasks.values()))

    def communication_bytes(self) -> Dict[str, int]:
        """Bytes moved by data-movement tasks, per kind.

        ``send``/``recv`` are inter-node transfers, ``copy`` is intra-node
        (possibly peer-to-peer between GPUs), ``reduce`` is the traffic of the
        hierarchical reduction trees.
        """
        volumes: Dict[str, int] = defaultdict(int)
        for task in self.tasks.values():
            nbytes = getattr(task, "nbytes", 0) or 0
            if task.kind in ("send", "recv", "copy", "reduce", "download"):
                volumes[task.kind] += int(nbytes)
        return dict(volumes)

    def roots(self) -> List[TaskId]:
        """Tasks with no recorded predecessor."""
        with_preds = {dst for _, dst in self.edges}
        return sorted(tid for tid in self.tasks if tid not in with_preds)

    def leaves(self) -> List[TaskId]:
        """Tasks no other recorded task depends on."""
        with_succs = {src for src, _ in self.edges}
        return sorted(tid for tid in self.tasks if tid not in with_succs)

    # ------------------------------------------------------------------ #
    # networkx interoperability and path metrics
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> "nx.DiGraph":
        """The DAG as a :class:`networkx.DiGraph` with task attributes on nodes."""
        graph = nx.DiGraph()
        for tid, task in self.tasks.items():
            graph.add_node(
                tid,
                kind=task.kind,
                worker=task.worker,
                label=task.label or str(task),
                nbytes=int(getattr(task, "nbytes", 0) or 0),
            )
        graph.add_edges_from(self.edges)
        return graph

    def is_acyclic(self) -> bool:
        """True when the merged task DAG contains no cycle."""
        return nx.is_directed_acyclic_graph(self.to_networkx())

    def critical_path(
        self, durations: Optional[Mapping[TaskId, float]] = None
    ) -> Tuple[List[TaskId], float]:
        """Longest dependency chain and its length.

        Without ``durations`` every task counts as 1 (the result is the DAG
        depth); with a per-task duration mapping the returned weight is the
        lower bound on makespan with unlimited resources.
        """
        graph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(graph):
            raise ValueError("recorded plans contain a dependency cycle")
        weight = {tid: (1.0 if durations is None else float(durations.get(tid, 0.0)))
                  for tid in self.tasks}
        best: Dict[TaskId, float] = {}
        best_pred: Dict[TaskId, Optional[TaskId]] = {}
        for tid in nx.topological_sort(graph):
            incoming = [
                (best[src] , src) for src in graph.predecessors(tid)
            ]
            if incoming:
                length, pred = max(incoming)
            else:
                length, pred = 0.0, None
            best[tid] = length + weight[tid]
            best_pred[tid] = pred
        if not best:
            return [], 0.0
        end = max(best, key=best.get)
        path: List[TaskId] = []
        cursor: Optional[TaskId] = end
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        path.reverse()
        return path, best[end]

    def parallelism_profile(self) -> Dict[int, int]:
        """Number of tasks at each DAG depth (a proxy for available parallelism)."""
        graph = self.to_networkx()
        depth: Dict[TaskId, int] = {}
        for tid in nx.topological_sort(graph):
            preds = list(graph.predecessors(tid))
            depth[tid] = 0 if not preds else 1 + max(depth[p] for p in preds)
        return dict(Counter(depth.values()))

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_dot(self, max_label_length: int = 40) -> str:
        """GraphViz DOT source for the DAG (Fig. 4 style: colour = worker row, shape = kind)."""
        lines = [
            "digraph executionplan {",
            "  rankdir=LR;",
            '  node [style=filled, fontname="Helvetica", fontsize=10];',
        ]
        for tid, task in sorted(self.tasks.items()):
            label = (task.label or f"{task.kind} #{tid}")[:max_label_length]
            color = _KIND_COLORS.get(task.kind, "white")
            lines.append(
                f'  t{tid} [label="{label}\\nw{task.worker}", fillcolor="{color}"];'
            )
        for src, dst in self.edges:
            lines.append(f"  t{src} -> t{dst};")
        lines.append("}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable multi-line summary used by examples and the CLI."""
        counts = self.task_counts()
        comm = self.communication_bytes()
        path, depth = self.critical_path()
        lines = [
            f"tasks: {len(self)} across {len(self.tasks_per_worker())} workers",
            "task counts: " + ", ".join(f"{k}={v}" for k, v in sorted(counts.items())),
            "communication: "
            + (", ".join(f"{k}={v / 1e6:.1f} MB" for k, v in sorted(comm.items())) or "none"),
            f"critical path: {len(path)} tasks (depth {depth:.0f})",
        ]
        if self.dangling_deps:
            lines.append(f"dangling dependencies on unrecorded tasks: {len(self.dangling_deps)}")
        return "\n".join(lines)


def plan_to_dot(plan: ExecutionPlan) -> str:
    """DOT source for a single execution plan (convenience wrapper)."""
    return PlanGraph.from_plans([plan]).to_dot()
