"""Discrete-event simulation substrate.

The paper's measurements come from running on a real GPU cluster.  This
reproduction replaces the cluster with a discrete-event simulator: every task
produced by the execution planner occupies one or more simulated resources
(GPU compute engines, the per-node PCIe bus, NICs, disks, the per-worker
scheduler) for a duration given by the performance model, and virtual time
advances as resources drain.  The same mechanisms the paper relies on —
overlap of data movement with kernel execution, PCIe sharing between GPUs in
one node, network bandwidth limits — emerge from resource contention in the
simulator rather than from hard-coded formulas.
"""

from .engine import Engine, EventHandle
from .faults import DeviceFailure, Degradation, FaultInjector, FaultSpec, RetryPolicy
from .resources import (
    BandwidthResource,
    ChannelResource,
    LegacyBandwidthResource,
    Resource,
    use_legacy_links,
)
from .trace import Trace, TraceInterval

__all__ = [
    "Engine",
    "EventHandle",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "DeviceFailure",
    "Degradation",
    "Resource",
    "ChannelResource",
    "BandwidthResource",
    "LegacyBandwidthResource",
    "use_legacy_links",
    "Trace",
    "TraceInterval",
]
