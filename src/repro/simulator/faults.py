"""Deterministic, seed-driven fault injection for the simulator.

Three fault classes cover the failure taxonomy of a multi-GPU cluster job:

* **transient transfer failures** — a completed transfer on a fault-tagged
  link (PCIe, NIC, disk, DtoD) is declared failed with probability
  ``transfer_fault_rate`` and retried with exponential backoff + jitter under
  a bounded :class:`RetryPolicy`; exhausting the budget raises
  :class:`~repro.errors.FaultError` (a *permanent* transfer failure);
* **link degradation/outage windows** — a bandwidth resource runs at
  ``scale``x its nominal bandwidth between two virtual times (an outage is a
  degradation with ``scale=0``, clamped to a tiny positive floor so the
  processor-sharing arithmetic stays finite: queued transfers survive the
  window and complete when bandwidth is restored);
* **permanent device failures** — at a configured virtual time one GPU is
  marked failed; the runtime recovers at the next quiescent point (lineage
  replay + rehoming + forced redistribution, see
  :mod:`repro.runtime.recovery`).

All randomness flows through one ``random.Random(seed)`` instance and the
simulation's event order is deterministic, so a given ``(FaultSpec, seed)``
pair always yields the same fault schedule — the property chaos tests and the
CI chaos-smoke baseline rely on this.

The injector costs nothing when absent: resources carry ``injector = None``
class attributes and every hook is behind an ``is None`` fast path, keeping
fault-free runs bit-identical in events and virtual time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import FaultError

__all__ = ["RetryPolicy", "Degradation", "DeviceFailure", "FaultSpec", "FaultInjector"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for failed transfers.

    Attempt ``k`` (1-based) that fails is retried after
    ``min(base_delay * 2**(k-1), max_delay) * (1 + jitter * U[0,1))`` seconds,
    up to ``max_attempts`` total attempts and a per-transfer ``deadline``
    measured from the first attempt's start.
    """

    max_attempts: int = 4
    base_delay: float = 1e-4
    max_delay: float = 0.1
    jitter: float = 0.5
    deadline: float = float("inf")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay after the ``attempt``-th (1-based) failed try."""
        base = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class Degradation:
    """One bandwidth-degradation window on links whose name contains ``kind``."""

    kind: str  # substring of the resource name: "nic", "pcie", "disk", "dtod"
    start: float  # virtual time the window opens
    end: float  # virtual time the window closes (bandwidth restored)
    scale: float  # bandwidth multiplier inside the window (0 = outage)


@dataclass(frozen=True)
class DeviceFailure:
    """One permanent GPU failure: device ``worker.local_index`` at ``time``."""

    worker: int
    local_index: int
    time: float


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault schedule, parseable from the CLI ``--inject-faults``.

    Grammar (comma-separated clauses, repeated ``device=``/``degrade=``
    clauses accumulate)::

        transfer=0.01                 # transient transfer-failure probability
        compute=0.001                 # transient compute-item failure probability
        device=0.1@2.5                # device worker 0, local index 1 fails at t=2.5
        degrade=nic@1.0:2.0x0.25      # NICs at 25% bandwidth for t in [1.0, 2.0)
        retry=6                       # retry budget (max attempts per transfer)
        deadline=0.5                  # per-transfer retry deadline (seconds)

    An *empty* spec (``FaultSpec()``) injects nothing but still enables
    lineage tracking, so tests can trigger failures manually via
    ``Context.fail_device``.
    """

    transfer_fault_rate: float = 0.0
    compute_fault_rate: float = 0.0
    device_failures: Tuple[DeviceFailure, ...] = ()
    degradations: Tuple[Degradation, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse the CLI fault-spec grammar; raises :class:`FaultError`."""
        transfer_rate = 0.0
        compute_rate = 0.0
        failures: List[DeviceFailure] = []
        degradations: List[Degradation] = []
        retry_kwargs = {}
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise FaultError(
                    f"bad fault clause {clause!r}: expected key=value "
                    "(e.g. transfer=0.01, device=0.1@2.5)"
                )
            try:
                if key == "transfer":
                    transfer_rate = float(value)
                elif key == "compute":
                    compute_rate = float(value)
                elif key == "retry":
                    retry_kwargs["max_attempts"] = int(value)
                elif key == "deadline":
                    retry_kwargs["deadline"] = float(value)
                elif key == "device":
                    dev, _, when = value.partition("@")
                    worker, _, local = dev.partition(".")
                    failures.append(
                        DeviceFailure(int(worker), int(local), float(when))
                    )
                elif key == "degrade":
                    kind, _, window = value.partition("@")
                    times, _, scale = window.partition("x")
                    start, _, end = times.partition(":")
                    degradations.append(
                        Degradation(kind, float(start), float(end), float(scale))
                    )
                else:
                    raise FaultError(
                        f"unknown fault clause {key!r} in {clause!r} "
                        "(expected transfer/compute/device/degrade/retry/deadline)"
                    )
            except (TypeError, ValueError) as exc:
                raise FaultError(f"bad fault clause {clause!r}: {exc}") from exc
        for rate, name in ((transfer_rate, "transfer"), (compute_rate, "compute")):
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} fault rate must be in [0, 1], got {rate}")
        return FaultSpec(
            transfer_fault_rate=transfer_rate,
            compute_fault_rate=compute_rate,
            device_failures=tuple(failures),
            degradations=tuple(degradations),
            retry=RetryPolicy(**retry_kwargs) if retry_kwargs else RetryPolicy(),
        )


class FaultInjector:
    """Schedules fault events through the engine and arbitrates retries.

    One injector serves a whole runtime: :meth:`install` tags the fault-prone
    resources (those whose ``fault_role`` matches a configured nonzero rate),
    schedules the degradation windows and device-failure events, and the
    resources call back into :meth:`intercept_transfer` /
    :meth:`intercept_work` on every completion.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        # counters surfaced through RuntimeStats
        self.transfer_faults_injected = 0
        self.transfers_retried = 0
        self.transfers_failed_permanently = 0
        self.compute_faults_injected = 0
        self.compute_retried = 0
        self.degradations_applied = 0
        #: device failures waiting for the next quiescent point
        self.pending_failures: List[object] = []

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def install(self, runtime) -> None:
        """Wire the injector into a :class:`~repro.runtime.system.RuntimeSystem`."""
        engine = runtime.engine
        spec = self.spec
        resources = [
            res for worker in runtime.workers for res in worker.resources.all_resources()
        ]
        for res in resources:
            role = getattr(res, "fault_role", None)
            if role == "transfer" and spec.transfer_fault_rate > 0.0:
                res.injector = self
            elif role == "compute" and spec.compute_fault_rate > 0.0:
                res.injector = self
        for degradation in spec.degradations:
            targets = [
                res
                for res in resources
                if degradation.kind in res.name and hasattr(res, "rescale_bandwidth")
            ]
            if not targets:
                raise FaultError(
                    f"degradation kind {degradation.kind!r} matches no link resource"
                )
            self._schedule_degradation(engine, degradation, targets)
        device_by_key = {
            (dev.worker, dev.local_index): dev for dev in runtime.cluster.device_ids()
        }
        for failure in spec.device_failures:
            device = device_by_key.get((failure.worker, failure.local_index))
            if device is None:
                raise FaultError(
                    f"device failure targets unknown device "
                    f"{failure.worker}.{failure.local_index}"
                )
            engine.schedule_at(failure.time, self._make_failure_event(device))

    def _make_failure_event(self, device):
        def fail() -> None:
            self.pending_failures.append(device)

        return fail

    def _schedule_degradation(self, engine, degradation: Degradation, targets) -> None:
        def begin() -> None:
            self.degradations_applied += 1
            for res in targets:
                res.rescale_bandwidth(degradation.scale)

        def finish() -> None:
            for res in targets:
                res.rescale_bandwidth(1.0)

        engine.schedule_at(degradation.start, begin)
        engine.schedule_at(degradation.end, finish)

    # ------------------------------------------------------------------ #
    # manual failure hook (tests, Context.fail_device)
    # ------------------------------------------------------------------ #
    def fail_device(self, device) -> None:
        """Mark ``device`` failed; recovery runs at the next quiescent point."""
        self.pending_failures.append(device)

    def take_pending_failures(self) -> List[object]:
        """Drain and return the devices awaiting recovery."""
        pending, self.pending_failures = self.pending_failures, []
        return pending

    # ------------------------------------------------------------------ #
    # completion hooks (called by the resources)
    # ------------------------------------------------------------------ #
    def intercept_transfer(self, resource, transfer) -> bool:
        """Decide whether a completing transfer failed; schedule its retry.

        Returns ``True`` when the completion was intercepted (the resource
        must neither recycle the record nor invoke its callback).  Raises
        :class:`FaultError` when the retry budget or deadline is exhausted.
        """
        rate = self.spec.transfer_fault_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return False
        self.transfer_faults_injected += 1
        policy = self.spec.retry
        elapsed = resource.engine.now - transfer.first_started
        if transfer.attempt >= policy.max_attempts or elapsed > policy.deadline:
            self.transfers_failed_permanently += 1
            raise FaultError(
                f"transfer {transfer.label!r} on {resource.name} failed permanently "
                f"after {transfer.attempt} attempts ({elapsed:.6f}s elapsed); "
                f"retry budget: {policy.max_attempts} attempts, "
                f"deadline {policy.deadline}s"
            )
        self.transfers_retried += 1
        delay = policy.delay(transfer.attempt, self.rng)
        resource.engine.schedule(delay, lambda: resource.retry_transfer(transfer))
        return True

    def intercept_work(self, resource, work) -> bool:
        """Transient-failure hook for channel work items (compute faults)."""
        rate = self.spec.compute_fault_rate
        if rate <= 0.0 or self.rng.random() >= rate:
            return False
        self.compute_faults_injected += 1
        policy = self.spec.retry
        if work.attempt >= policy.max_attempts:
            raise FaultError(
                f"work item {work.label!r} on {resource.name} failed permanently "
                f"after {work.attempt} attempts"
            )
        self.compute_retried += 1
        delay = policy.delay(work.attempt, self.rng)
        resource.engine.schedule(delay, lambda: resource.retry_work(work))
        return True
