"""Execution-trace recording for the simulator.

Every resource records the intervals during which it was busy and on behalf of
which task.  Tests use the trace to check that the runtime actually overlaps
data movement with kernel execution (one of the paper's central claims), and
benchmark harnesses use it to report utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["TraceInterval", "Trace"]


@dataclass(frozen=True)
class TraceInterval:
    """One busy interval of one resource."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds the interval spans."""
        return self.end - self.start


class Trace:
    """Collection of busy intervals, indexed by resource name.

    :meth:`record` sits on the simulation's hot path (every completed work
    item appends one interval), so intervals are stored as plain tuples and
    only materialised into :class:`TraceInterval` objects when the
    :attr:`intervals` API is actually consulted (analysis/report time).
    """

    __slots__ = ("_raw", "_materialised")

    def __init__(self) -> None:
        #: raw (resource, label, start, end) tuples, in record order
        self._raw: List[tuple] = []
        self._materialised: Optional[List[TraceInterval]] = None

    @property
    def intervals(self) -> List[TraceInterval]:
        """Every recorded interval, as :class:`TraceInterval` objects."""
        cached = self._materialised
        if cached is None or len(cached) != len(self._raw):
            cached = [TraceInterval(*raw) for raw in self._raw]
            self._materialised = cached
        return cached

    def record(self, resource: str, label: str, start: float, end: float) -> None:
        """Append one busy interval for ``resource``."""
        self._raw.append((resource, label, start, end))

    def for_resource(self, resource: str) -> List[TraceInterval]:
        """All recorded intervals of one resource."""
        return [TraceInterval(*raw) for raw in self._raw if raw[0] == resource]

    def busy_time(self, resource: str) -> float:
        """Total busy time of ``resource`` (intervals may overlap for shared resources)."""
        spans = sorted(
            (raw[2], raw[3]) for raw in self._raw if raw[0] == resource
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in spans:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def utilisation(self, resource: str, makespan: float) -> float:
        """Busy fraction of a resource over the traced horizon."""
        if makespan <= 0:
            return 0.0
        return self.busy_time(resource) / makespan

    def overlap_time(self, resource_a: str, resource_b: str) -> float:
        """Total virtual time during which both resources were busy simultaneously."""
        merged_a = self._merged(resource_a)
        merged_b = self._merged(resource_b)
        total = 0.0
        i = j = 0
        while i < len(merged_a) and j < len(merged_b):
            a0, a1 = merged_a[i]
            b0, b1 = merged_b[j]
            lo, hi = max(a0, b0), min(a1, b1)
            if hi > lo:
                total += hi - lo
            if a1 < b1:
                i += 1
            else:
                j += 1
        return total

    def _merged(self, resource: str) -> List[tuple]:
        spans = sorted((raw[2], raw[3]) for raw in self._raw if raw[0] == resource)
        merged: List[tuple] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def summary(self) -> Dict[str, float]:
        """Busy time per resource."""
        resources = {raw[0] for raw in self._raw}
        return {name: self.busy_time(name) for name in sorted(resources)}
