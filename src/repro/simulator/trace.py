"""Execution-trace recording for the simulator.

Every resource records the intervals during which it was busy and on behalf of
which task.  Tests use the trace to check that the runtime actually overlaps
data movement with kernel execution (one of the paper's central claims), and
benchmark harnesses use it to report utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TraceInterval", "Trace"]


@dataclass(frozen=True)
class TraceInterval:
    """One busy interval of one resource."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Seconds the interval spans."""
        return self.end - self.start


@dataclass
class Trace:
    """Collection of busy intervals, indexed by resource name."""

    intervals: List[TraceInterval] = field(default_factory=list)

    def record(self, resource: str, label: str, start: float, end: float) -> None:
        """Append one busy interval for ``resource``."""
        self.intervals.append(TraceInterval(resource, label, start, end))

    def for_resource(self, resource: str) -> List[TraceInterval]:
        """All recorded intervals of one resource."""
        return [iv for iv in self.intervals if iv.resource == resource]

    def busy_time(self, resource: str) -> float:
        """Total busy time of ``resource`` (intervals may overlap for shared resources)."""
        ivs = sorted(self.for_resource(resource), key=lambda iv: iv.start)
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for iv in ivs:
            if cur_start is None:
                cur_start, cur_end = iv.start, iv.end
            elif iv.start <= cur_end:
                cur_end = max(cur_end, iv.end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = iv.start, iv.end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def utilisation(self, resource: str, makespan: float) -> float:
        """Busy fraction of a resource over the traced horizon."""
        if makespan <= 0:
            return 0.0
        return self.busy_time(resource) / makespan

    def overlap_time(self, resource_a: str, resource_b: str) -> float:
        """Total virtual time during which both resources were busy simultaneously."""
        merged_a = self._merged(resource_a)
        merged_b = self._merged(resource_b)
        total = 0.0
        i = j = 0
        while i < len(merged_a) and j < len(merged_b):
            a0, a1 = merged_a[i]
            b0, b1 = merged_b[j]
            lo, hi = max(a0, b0), min(a1, b1)
            if hi > lo:
                total += hi - lo
            if a1 < b1:
                i += 1
            else:
                j += 1
        return total

    def _merged(self, resource: str) -> List[tuple]:
        ivs = sorted(self.for_resource(resource), key=lambda iv: iv.start)
        merged: List[tuple] = []
        for iv in ivs:
            if merged and iv.start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], iv.end))
            else:
                merged.append((iv.start, iv.end))
        return merged

    def summary(self) -> Dict[str, float]:
        """Busy time per resource."""
        resources = {iv.resource for iv in self.intervals}
        return {name: self.busy_time(name) for name in sorted(resources)}
