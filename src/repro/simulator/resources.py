"""Simulated resources: FIFO channels and shared-bandwidth links.

Two resource flavours cover everything the runtime needs:

* :class:`ChannelResource` — ``k`` identical servers with a FIFO queue.  Used
  for GPU compute engines (k=1), per-GPU copy engines, the per-worker
  scheduler/control path and the driver's planner.

* :class:`BandwidthResource` — a processor-sharing link: concurrent transfers
  split the bandwidth equally, which is how a PCIe bus shared by several GPUs
  or a NIC carrying several messages behaves to first order.  This is the
  mechanism behind the paper's observation that multi-GPU nodes stop
  benefiting from host-memory spilling because the GPUs share the PCIe bus
  (Sec. 4.4), while spreading the same GPUs over multiple nodes restores the
  benefit (Sec. 4.5).

The processor-sharing link uses the classic *virtual service* formulation:
instead of decrementing every active transfer's remaining bytes at every
event (O(n) per event, as the first implementation did), the link maintains a
cumulative normalized-service clock ``V`` that advances at ``bandwidth / n``
bytes per second, and every transfer admitted at clock value ``V0`` completes
when ``V`` reaches its *finish tag* ``V0 + size``.  Finish tags live in a
min-heap, so an arrival or completion costs O(log n), and the link keeps
exactly one pending wake-up armed at the earliest finish time — cancelled and
re-armed whenever an arrival or completion moves that time.

:class:`LegacyBandwidthResource` preserves the original per-transfer
recomputation so the perf harness in ``benchmarks/bench_hotpath.py`` can
measure the rewrite against the exact pre-rewrite behaviour.  Besides being
O(n) per event, the legacy link had two wake-up flaws the rewrite corrects —
it never re-armed its pending wake-up when the active set changed, so

* an arrival that *slowed* the link made the armed wake-up fire early as a
  spurious no-op event, and
* an arrival that would finish *before* the armed wake-up (a short transfer
  joining a long one) was only detected at the old wake time and completed
  late, stealing bandwidth from the other transfers in the meantime.

The second flaw means simulated virtual times legitimately change with the
rewrite (the new link is the correct processor-sharing model); the remaining
differences are ~1-ulp FP rounding on rate-change crossings that can amplify
through scheduling ties on long runs.  :func:`use_legacy_links` switches
which implementation :class:`~repro.runtime.resources.WorkerResources`
instantiates.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from .engine import Engine, EventHandle
from .trace import Trace

__all__ = [
    "Resource",
    "ChannelResource",
    "BandwidthResource",
    "LegacyBandwidthResource",
    "use_legacy_links",
    "legacy_links_enabled",
]

Callback = Callable[[], None]

#: Transfers are considered complete when less than half a byte remains.  The
#: processor-sharing arithmetic leaves tiny floating-point residuals; treating
#: them as unfinished can produce wake-ups whose delay underflows below the
#: clock's floating-point resolution and the simulation stops making progress.
_BYTE_EPSILON = 0.5

#: When True, ``WorkerResources`` builds :class:`LegacyBandwidthResource`
#: links.  Only the perf harness should flip this (via :func:`use_legacy_links`).
_LEGACY_LINKS = False


def legacy_links_enabled() -> bool:
    """True while :func:`use_legacy_links` is active."""
    return _LEGACY_LINKS


@contextmanager
def use_legacy_links(enabled: bool = True):
    """Build the pre-rewrite O(n)-per-event links inside this context.

    Exists so ``benchmarks/bench_hotpath.py`` can measure the virtual-service
    rewrite against the original implementation in the same process.
    """
    global _LEGACY_LINKS
    previous = _LEGACY_LINKS
    _LEGACY_LINKS = enabled
    try:
        yield
    finally:
        _LEGACY_LINKS = previous


class Resource:
    """Common interface: request work, get a callback when it completes."""

    #: Fault-injection wiring (:mod:`repro.simulator.faults`): ``fault_role``
    #: tags what kind of faults can hit this resource ("transfer" for links,
    #: "compute" for channels) and is set by the runtime's resource factory;
    #: ``injector`` is installed by ``FaultInjector.install``.  Both stay the
    #: class-level ``None`` in fault-free runs, and every hook sits behind an
    #: ``is None`` fast path, so the fault layer costs nothing when disabled.
    fault_role: Optional[str] = None
    injector = None

    def __init__(self, engine: Engine, name: str, trace: Optional[Trace] = None):
        self.engine = engine
        self.name = name
        self.trace = trace
        self.completed_items = 0
        #: Engine events this resource's callbacks consumed (wake-ups and
        #: work-item completions).  The perf harness tracks this per resource
        #: to show where simulated event traffic goes.
        self.events_processed = 0

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        """Consume ``amount`` of the resource, then invoke the callback."""
        raise NotImplementedError

    def _record(self, label: str, start: float, end: float) -> None:
        if self.trace is not None:
            self.trace.record(self.name, label, start, end)


class _QueuedWork:
    """One channel work item, recycled through the owning resource's slab.

    The record carries everything its completion event needs, and ``_fire``
    (a bound method created once per record) is the event callback — no
    per-item closure, no steady-state allocation.
    """

    __slots__ = ("resource", "duration", "callback", "label", "start", "attempt", "fire")

    def __init__(self, resource: "ChannelResource"):
        self.resource = resource
        self.duration = 0.0
        self.callback: Optional[Callback] = None
        self.label = ""
        self.start = 0.0
        self.attempt = 1
        self.fire = self._fire  # bind once; reused across recycles

    def _fire(self) -> None:
        resource = self.resource
        injector = resource.injector
        if injector is not None and injector.intercept_work(resource, self):
            # Injected transient failure: the server frees up, the item is
            # re-queued by ``retry_work`` after the injector's backoff delay.
            resource._busy -= 1
            resource.events_processed += 1
            resource._dispatch()
            return
        callback = self.callback
        resource._busy -= 1
        resource.completed_items += 1
        resource.events_processed += 1
        if resource.trace is not None:
            resource.trace.record(
                resource.name, self.label, self.start, resource.engine.now
            )
        # Recycle before invoking the callback: the callback may request new
        # work on this resource, which can then reuse this record immediately.
        self.callback = None
        self.label = ""
        resource._free.append(self)
        callback()
        resource._dispatch()


class ChannelResource(Resource):
    """``channels`` identical servers with a FIFO queue.

    ``request(duration)`` enqueues a work item lasting ``duration`` seconds.
    An optional ``per_item_overhead`` is added to every item, modelling fixed
    scheduling/launch costs.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        channels: int = 1,
        per_item_overhead: float = 0.0,
        trace: Optional[Trace] = None,
    ):
        super().__init__(engine, name, trace)
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.channels = channels
        self.per_item_overhead = per_item_overhead
        self._queue: Deque[_QueuedWork] = deque()
        self._busy = 0
        #: slab of recycled work records (bounded by peak queue + busy depth)
        self._free: List[_QueuedWork] = []

    @property
    def queue_length(self) -> int:
        """Requests waiting for a free server."""
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        """Servers currently occupied."""
        return self._busy

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        """Occupy one server for ``amount`` seconds, then invoke the callback."""
        if amount < 0:
            raise ValueError(f"negative duration {amount!r}")
        free = self._free
        work = free.pop() if free else _QueuedWork(self)
        work.duration = amount + self.per_item_overhead
        work.callback = callback
        work.label = label
        if self.injector is not None:
            work.attempt = 1
        self._queue.append(work)
        self._dispatch()

    def retry_work(self, work: "_QueuedWork") -> None:
        """Re-queue a work item whose previous attempt the injector failed."""
        work.attempt += 1
        self._queue.append(work)
        self._dispatch()

    def _dispatch(self) -> None:
        engine = self.engine
        queue = self._queue
        while self._busy < self.channels and queue:
            work = queue.popleft()
            self._busy += 1
            work.start = engine.now
            engine.schedule(work.duration, work.fire)


class _Transfer:
    """One in-flight transfer, recycled through the owning link's slab."""

    __slots__ = (
        "size", "callback", "label", "started", "admit_virtual",
        "attempt", "first_started",
    )

    def __init__(self, size: float, callback: Callback, label: str, started: float):
        self.size = size  # bytes of service owed, including the latency charge
        self.callback = callback
        self.label = label
        self.started = started
        #: Virtual-clock value when the transfer was admitted to the active set.
        self.admit_virtual = 0.0
        #: Retry bookkeeping, only maintained while an injector is installed.
        self.attempt = 1
        self.first_started = started

    def remaining(self, virtual: float) -> float:
        """Service bytes still owed at virtual-clock value ``virtual``.

        Computed from the admission snapshot rather than the (rounded) finish
        tag so that a transfer whose active set never changes completes at
        exactly ``size / rate`` — bit-identical to the legacy per-transfer
        decrement for the uninterrupted case.
        """
        return self.size - (virtual - self.admit_virtual)


class BandwidthResource(Resource):
    """Processor-sharing link with a fixed total bandwidth (bytes/second).

    Active transfers progress simultaneously, each at ``bandwidth / n`` where
    ``n`` is the number of active transfers.  Each transfer additionally pays a
    fixed ``latency`` once (charged as ``latency * bandwidth`` extra service
    bytes, so the latency of concurrent transfers is itself shared — matching
    a link whose setup handshake rides on the same wire).

    Incrementally maintained via the virtual-service clock (module docstring):
    arrivals and completions are O(log n), and exactly one wake-up is armed at
    the earliest finish time; the wake-up is cancelled and re-armed whenever
    that time moves, so no spurious early wake-ups are ever processed.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        trace: Optional[Trace] = None,
        max_concurrency: Optional[int] = None,
    ):
        super().__init__(engine, name, trace)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        #: The healthy bandwidth; ``rescale_bandwidth`` degrades relative to it.
        self.nominal_bandwidth = bandwidth
        self.latency = latency
        self.max_concurrency = max_concurrency
        #: Cumulative normalized service: bytes a transfer active since t=0
        #: would have received.  Monotonically non-decreasing.
        self._virtual = 0.0
        self._last_update = 0.0
        #: Min-heap of (finish_tag, seq, transfer) over the active set.
        self._finish_heap: List[Tuple[float, int, _Transfer]] = []
        self._seq = itertools.count()
        self._waiting: Deque[_Transfer] = deque()
        self._wakeup: Optional[EventHandle] = None
        self._wakeup_time = 0.0
        #: slab of recycled transfer records (bounded by peak concurrency)
        self._free: List[_Transfer] = []
        self.bytes_transferred = 0.0
        #: Wake-ups that were armed but superseded before firing (the legacy
        #: implementation processed these as spurious no-op events).
        self.wakeups_cancelled = 0

    @property
    def active_transfers(self) -> int:
        """Transfers currently sharing the link."""
        return len(self._finish_heap)

    @property
    def queued_transfers(self) -> int:
        """Always 0: a processor-sharing link admits every transfer at once."""
        return len(self._waiting)

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        """Start transferring ``amount`` bytes; ``callback`` fires on completion."""
        if amount < 0:
            raise ValueError(f"negative transfer size {amount!r}")
        self.bytes_transferred += amount
        free = self._free
        if free:
            transfer = free.pop()
            transfer.size = float(amount) + self.latency * self.bandwidth
            transfer.callback = callback
            transfer.label = label
            transfer.started = self.engine.now
            transfer.admit_virtual = 0.0
        else:
            transfer = _Transfer(
                float(amount) + self.latency * self.bandwidth,
                callback,
                label,
                self.engine.now,
            )
        if self.injector is not None:
            transfer.attempt = 1
            transfer.first_started = self.engine.now
        self._advance()
        if (
            self.max_concurrency is not None
            and len(self._finish_heap) >= self.max_concurrency
        ):
            self._waiting.append(transfer)
            return  # active set unchanged: the armed wake-up stays valid
        self._admit(transfer)
        self._rearm()

    # ------------------------------------------------------------------ #
    # fault hooks (no-ops unless a FaultInjector is installed)
    # ------------------------------------------------------------------ #
    def retry_transfer(self, transfer: _Transfer) -> None:
        """Re-admit a transfer whose previous attempt the injector failed.

        The retried attempt redoes the full service (payload plus the latency
        charge captured in ``transfer.size``); ``attempt``/``first_started``
        carry the retry budget across attempts.
        """
        transfer.attempt += 1
        transfer.started = self.engine.now
        self._advance()
        if (
            self.max_concurrency is not None
            and len(self._finish_heap) >= self.max_concurrency
        ):
            self._waiting.append(transfer)
            return
        self._admit(transfer)
        self._rearm()

    def rescale_bandwidth(self, scale: float) -> None:
        """Run the link at ``scale`` x nominal bandwidth (degradation windows).

        Settles accrued service at the old rate, switches the rate, and
        re-arms the wake-up so in-flight transfers finish at the new speed.
        An outage (``scale=0``) is clamped to a tiny positive floor: queued
        transfers survive the window and complete once bandwidth is restored.
        """
        self._advance()
        self.bandwidth = self.nominal_bandwidth * max(scale, 1e-9)
        if self._wakeup is not None:
            self._wakeup.cancel()
            self.wakeups_cancelled += 1
            self._wakeup = None
        self._rearm()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _rate(self) -> float:
        return self.bandwidth / max(1, len(self._finish_heap))

    def _advance(self) -> None:
        """Advance the virtual-service clock to the engine's current time."""
        now = self.engine.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0 and self._finish_heap:
            # inline _rate(): the heap is non-empty here, same arithmetic
            self._virtual += self.bandwidth / len(self._finish_heap) * elapsed

    def _admit(self, transfer: _Transfer) -> None:
        transfer.admit_virtual = self._virtual
        # The finish tag orders the heap; wake times and completion checks use
        # ``_Transfer.remaining`` (see its docstring for the FP rationale).
        heapq.heappush(
            self._finish_heap, (self._virtual + transfer.size, next(self._seq), transfer)
        )

    def _rearm(self) -> None:
        """Keep exactly one wake-up armed at the earliest finish time."""
        if not self._finish_heap:
            return
        head = self._finish_heap[0][2]
        rate = self.bandwidth / len(self._finish_heap)  # inline _rate()
        delay = max(0.0, head.remaining(self._virtual) / rate)
        due = self.engine.now + delay
        if self._wakeup is not None:
            if due == self._wakeup_time:
                return  # earliest finish unchanged: keep the armed wake-up
            self._wakeup.cancel()
            self.wakeups_cancelled += 1
        self._wakeup = self.engine.schedule_cancellable(delay, self._wake)
        self._wakeup_time = due

    def _wake(self) -> None:
        """Complete *every* finished transfer in one pass, then re-arm.

        One wake-up event handles the whole batch of transfers that are done
        at this instant (plus any waiting admissions they unblock), instead of
        burning one engine event per completion.
        """
        self._wakeup = None
        self.events_processed += 1
        self._advance()
        heap = self._finish_heap
        virtual = self._virtual
        finished: List[_Transfer] = []
        # inline _Transfer.remaining(): size - (virtual - admit_virtual)
        while heap:
            head = heap[0][2]
            if head.size - (virtual - head.admit_virtual) > _BYTE_EPSILON:
                break
            finished.append(heapq.heappop(heap)[2])
        while self._waiting and (
            self.max_concurrency is None
            or len(self._finish_heap) < self.max_concurrency
        ):
            self._admit(self._waiting.popleft())
        trace = self.trace
        free = self._free
        injector = self.injector
        for transfer in finished:
            if injector is not None and injector.intercept_transfer(self, transfer):
                # Injected transient failure: the record is parked until the
                # injector's backoff event calls ``retry_transfer`` — neither
                # recycled nor completed now.
                continue
            self.completed_items += 1
            if trace is not None:
                trace.record(self.name, transfer.label, transfer.started, self.engine.now)
            callback = transfer.callback
            # Recycle before invoking: the callback may start a new transfer
            # on this link, which can then reuse the record immediately.
            transfer.callback = None
            transfer.label = ""
            free.append(transfer)
            callback()
        self._advance()  # callbacks may have consumed virtual time via nested runs
        self._rearm()
        if not self._finish_heap and not self._waiting:
            # Idle link: rewind the clock so it is bounded by one busy period.
            # Otherwise ulp(_virtual) eventually exceeds _BYTE_EPSILON on
            # high-bandwidth links and the completion check can never pass.
            self._virtual = 0.0


class LegacyBandwidthResource(Resource):
    """Pre-rewrite processor-sharing link (reference for the perf harness).

    Recomputes every active transfer's remaining bytes on each event and never
    re-arms a scheduled wake-up, so an arrival that slows the shared rate
    leaves a stale wake-up behind that fires early as a no-op — and an arrival
    that would finish *before* the pending wake-up completes late (see the
    module docstring).  Kept verbatim so ``benchmarks/bench_hotpath.py`` can
    quantify the rewrite; do not use in new code.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        trace: Optional[Trace] = None,
        max_concurrency: Optional[int] = None,
    ):
        super().__init__(engine, name, trace)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency
        self.max_concurrency = max_concurrency
        self._active: List["_LegacyTransfer"] = []
        self._waiting: Deque["_LegacyTransfer"] = deque()
        self._last_update = 0.0
        self._wakeup_pending = False
        self.bytes_transferred = 0.0
        self.wakeups_cancelled = 0  # interface parity; always 0 here

    @property
    def active_transfers(self) -> int:
        """Transfers currently sharing the (legacy) link."""
        return len(self._active)

    @property
    def queued_transfers(self) -> int:
        """Always 0: the legacy link also admits every transfer at once."""
        return len(self._waiting)

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        """Transfer ``amount`` bytes with the pre-rewrite O(n) bookkeeping."""
        if amount < 0:
            raise ValueError(f"negative transfer size {amount!r}")
        self.bytes_transferred += amount
        transfer = _LegacyTransfer(
            remaining=float(amount) + self.latency * self.bandwidth,
            callback=callback,
            label=label,
            started=self.engine.now,
        )
        self._advance()
        if self.max_concurrency is not None and len(self._active) >= self.max_concurrency:
            self._waiting.append(transfer)
        else:
            self._active.append(transfer)
        self._reschedule()

    def _rate(self) -> float:
        n = max(1, len(self._active))
        return self.bandwidth / n

    def _advance(self) -> None:
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            self._last_update = now
            return
        if self._active:
            rate = self._rate()
            for transfer in self._active:
                transfer.remaining = max(0.0, transfer.remaining - rate * elapsed)
        self._last_update = now

    def _reschedule(self) -> None:
        if not self._active or self._wakeup_pending:
            return
        rate = self._rate()
        next_done = min(t.remaining for t in self._active) / rate
        self._wakeup_pending = True

        def _wake() -> None:
            self._wakeup_pending = False
            self.events_processed += 1
            self._advance()
            finished = [t for t in self._active if t.remaining <= _BYTE_EPSILON]
            self._active = [t for t in self._active if t.remaining > _BYTE_EPSILON]
            while (
                self._waiting
                and (self.max_concurrency is None or len(self._active) < self.max_concurrency)
            ):
                self._active.append(self._waiting.popleft())
            for transfer in finished:
                self.completed_items += 1
                self._record(transfer.label, transfer.started, self.engine.now)
                transfer.callback()
            self._advance()
            self._reschedule()

        self.engine.schedule(next_done, _wake)


@dataclass
class _LegacyTransfer:
    remaining: float
    callback: Callback
    label: str
    started: float


def bandwidth_resource_class():
    """The link implementation to build (honours :func:`use_legacy_links`)."""
    return LegacyBandwidthResource if _LEGACY_LINKS else BandwidthResource
