"""Simulated resources: FIFO channels and shared-bandwidth links.

Two resource flavours cover everything the runtime needs:

* :class:`ChannelResource` — ``k`` identical servers with a FIFO queue.  Used
  for GPU compute engines (k=1), per-GPU copy engines, the per-worker
  scheduler/control path and the driver's planner.

* :class:`BandwidthResource` — a processor-sharing link: concurrent transfers
  split the bandwidth equally, which is how a PCIe bus shared by several GPUs
  or a NIC carrying several messages behaves to first order.  This is the
  mechanism behind the paper's observation that multi-GPU nodes stop
  benefiting from host-memory spilling because the GPUs share the PCIe bus
  (Sec. 4.4), while spreading the same GPUs over multiple nodes restores the
  benefit (Sec. 4.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from .engine import Engine
from .trace import Trace

__all__ = ["Resource", "ChannelResource", "BandwidthResource"]

Callback = Callable[[], None]

#: Transfers are considered complete when less than half a byte remains.  The
#: processor-sharing arithmetic leaves tiny floating-point residuals; treating
#: them as unfinished can produce wake-ups whose delay underflows below the
#: clock's floating-point resolution and the simulation stops making progress.
_BYTE_EPSILON = 0.5


class Resource:
    """Common interface: request work, get a callback when it completes."""

    def __init__(self, engine: Engine, name: str, trace: Optional[Trace] = None):
        self.engine = engine
        self.name = name
        self.trace = trace
        self.completed_items = 0

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        raise NotImplementedError

    def _record(self, label: str, start: float, end: float) -> None:
        if self.trace is not None:
            self.trace.record(self.name, label, start, end)


@dataclass
class _QueuedWork:
    duration: float
    callback: Callback
    label: str


class ChannelResource(Resource):
    """``channels`` identical servers with a FIFO queue.

    ``request(duration)`` enqueues a work item lasting ``duration`` seconds.
    An optional ``per_item_overhead`` is added to every item, modelling fixed
    scheduling/launch costs.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        channels: int = 1,
        per_item_overhead: float = 0.0,
        trace: Optional[Trace] = None,
    ):
        super().__init__(engine, name, trace)
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.channels = channels
        self.per_item_overhead = per_item_overhead
        self._queue: Deque[_QueuedWork] = deque()
        self._busy = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        return self._busy

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        if amount < 0:
            raise ValueError(f"negative duration {amount!r}")
        self._queue.append(_QueuedWork(amount + self.per_item_overhead, callback, label))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._busy < self.channels and self._queue:
            work = self._queue.popleft()
            self._busy += 1
            start = self.engine.now
            end = start + work.duration

            def _complete(work=work, start=start, end=end) -> None:
                self._busy -= 1
                self.completed_items += 1
                self._record(work.label, start, end)
                work.callback()
                self._dispatch()

            self.engine.schedule(work.duration, _complete)


@dataclass
class _Transfer:
    remaining: float
    callback: Callback
    label: str
    started: float


class BandwidthResource(Resource):
    """Processor-sharing link with a fixed total bandwidth (bytes/second).

    Active transfers progress simultaneously, each at ``bandwidth / n`` where
    ``n`` is the number of active transfers.  Each transfer additionally pays a
    fixed ``latency`` once.  Completion times are recomputed whenever the
    active set changes.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float,
        latency: float = 0.0,
        trace: Optional[Trace] = None,
        max_concurrency: Optional[int] = None,
    ):
        super().__init__(engine, name, trace)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.latency = latency
        self.max_concurrency = max_concurrency
        self._active: List[_Transfer] = []
        self._waiting: Deque[_Transfer] = deque()
        self._last_update = 0.0
        self._wakeup_pending = False
        self.bytes_transferred = 0.0

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def request(self, amount: float, callback: Callback, label: str = "") -> None:
        """Start transferring ``amount`` bytes; ``callback`` fires on completion."""
        if amount < 0:
            raise ValueError(f"negative transfer size {amount!r}")
        self.bytes_transferred += amount
        transfer = _Transfer(
            remaining=float(amount) + self.latency * self.bandwidth,
            callback=callback,
            label=label,
            started=self.engine.now,
        )
        self._advance()
        if self.max_concurrency is not None and len(self._active) >= self.max_concurrency:
            self._waiting.append(transfer)
        else:
            self._active.append(transfer)
        self._reschedule()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _rate(self) -> float:
        n = max(1, len(self._active))
        return self.bandwidth / n

    def _advance(self) -> None:
        """Account progress made since the last update at the previous rate."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            self._last_update = now
            return
        if self._active:
            rate = self._rate()
            for transfer in self._active:
                transfer.remaining = max(0.0, transfer.remaining - rate * elapsed)
        self._last_update = now

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest possible completion time."""
        if not self._active or self._wakeup_pending:
            return
        rate = self._rate()
        next_done = min(t.remaining for t in self._active) / rate
        self._wakeup_pending = True

        def _wake() -> None:
            self._wakeup_pending = False
            self._advance()
            finished = [t for t in self._active if t.remaining <= _BYTE_EPSILON]
            self._active = [t for t in self._active if t.remaining > _BYTE_EPSILON]
            while (
                self._waiting
                and (self.max_concurrency is None or len(self._active) < self.max_concurrency)
            ):
                self._active.append(self._waiting.popleft())
            for transfer in finished:
                self.completed_items += 1
                self._record(transfer.label, transfer.started, self.engine.now)
                transfer.callback()
            self._advance()
            self._reschedule()

        self.engine.schedule(next_done, _wake)
