"""Minimal discrete-event engine.

The engine keeps a priority queue of timestamped callbacks.  Resources
(:mod:`repro.simulator.resources`) schedule their own completion events; the
runtime's scheduler reacts to completions by releasing dependent tasks, which
in turn request resources.  ``run()`` drains the queue and returns the final
virtual time.

Events can be *cancelled* through the handle :meth:`Engine.schedule` returns.
Cancelled entries stay in the heap (removing an arbitrary heap element is
O(n)) but are discarded unprocessed when they reach the front: they are never
invoked and never counted in :attr:`Engine.events_processed`.  This is what
lets the shared-bandwidth links re-arm their single wake-up whenever the
earliest completion time moves, instead of letting stale wake-ups fire as
spurious no-op events.

Two throughput mechanisms keep the hot loop allocation-free and the heap
small (long runs cancel hundreds of thousands of wake-ups):

* **Handle slab** — cancelled :class:`EventHandle` objects are recycled
  through a free list once they leave the heap, so steady-state cancellation
  churn allocates nothing.  The contract is that a handle is dead the moment
  it fires or :meth:`EventHandle.cancel` returns: holding on to it afterwards
  observes an unrelated future event.  Its ``time`` field is likewise only
  meaningful while the event is scheduled (it is reset on fire).

* **Heap compaction** — when more than half the heap (and at least
  :data:`_COMPACT_MIN` entries) is cancelled entries, the queue is rebuilt in
  O(n) without them.  Filtering preserves each entry's ``(time, seq)`` key and
  ``heapify`` restores the heap invariant over the same keys, so the pop
  order — and therefore the simulation — is unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Engine", "EventHandle"]

#: Compaction threshold: never compact heaps smaller than this (the O(n)
#: rebuild must be amortised against a meaningful number of lazy pops).
_COMPACT_MIN = 64

#: Upper bound on the recycled-handle free list (a safety valve; steady-state
#: simulations keep at most a handful of cancellable wake-ups in flight).
_SLAB_MAX = 1024


class EventHandle:
    """Handle to one scheduled event; supports cancellation before it fires.

    Handles are recycled through the engine's slab: once the event has fired
    or :meth:`cancel` has returned, the handle must not be used again — the
    engine may re-issue the same object for a future
    :meth:`Engine.schedule_cancellable` call.  ``time`` is the event's
    absolute due time while the event is scheduled; it is reset to ``-1.0``
    when the event fires so a recycled handle can never leak a stale
    timestamp.
    """

    __slots__ = ("time", "callback", "_engine")

    def __init__(self, engine: "Engine", time: float, callback: Callable[[], Any]):
        self._engine = engine
        self.time = time
        self.callback: Optional[Callable[[], Any]] = callback

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` was called before the event fired."""
        return self.callback is None

    def cancel(self) -> bool:
        """Cancel the event; returns False when already cancelled or fired."""
        if self.callback is None:
            return False
        self.callback = None
        self._engine._on_cancel()
        return True


class Engine:
    """Priority-queue driven virtual clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Heap entries are ``(time, seq, callback-or-EventHandle)``.  Plain
        #: callables are the allocation-free common case; only callers that
        #: need cancellation (:meth:`schedule_cancellable`) pay for a handle.
        self._queue: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._events_cancelled = 0
        self._cancelled_in_queue = 0
        #: free list of recycled (cancelled-and-pruned) EventHandles
        self._handle_slab: List[EventHandle] = []

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_cancellable(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Like :meth:`schedule`, but returns a handle that can cancel the event."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        slab = self._handle_slab
        if slab:
            handle = slab.pop()
            handle.time = time
            handle.callback = callback
        else:
            handle = EventHandle(self, time, callback)
        heapq.heappush(self._queue, (time, next(self._counter), handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def call_soon(self, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at the current virtual time, after pending same-time events."""
        self.schedule(0.0, callback)

    def _on_cancel(self) -> None:
        self._events_cancelled += 1
        self._cancelled_in_queue += 1
        # Heap hygiene: when cancelled entries outnumber live ones the lazy
        # pop-time discard stops paying for itself — rebuild without them.
        if (
            self._cancelled_in_queue * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(n), order-preserving).

        Entries keep their ``(time, seq)`` keys, so ``heapify`` yields a heap
        that pops in exactly the order the old heap would have (cancelled
        entries were never invoked anyway).  Pruned handles go back to the
        slab for reuse.
        """
        queue = self._queue
        slab = self._handle_slab
        live: List[Tuple[float, int, Any]] = []
        for entry in queue:
            callback = entry[2]
            if type(callback) is EventHandle and callback.callback is None:
                if len(slab) < _SLAB_MAX:
                    slab.append(callback)
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Events scheduled but not yet processed (cancelled ones excluded)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Events that were scheduled but cancelled before they could fire."""
        return self._events_cancelled

    def _prune_cancelled(self) -> None:
        """Drop cancelled entries sitting at the front of the queue."""
        queue = self._queue
        slab = self._handle_slab
        while queue:
            callback = queue[0][2]
            if type(callback) is not EventHandle or callback.callback is not None:
                break
            heapq.heappop(queue)
            self._cancelled_in_queue -= 1
            if len(slab) < _SLAB_MAX:
                slab.append(callback)

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        self._prune_cancelled()
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise RuntimeError("event queue went backwards in time")
        self.now = time
        self._events_processed += 1
        if type(callback) is EventHandle:
            handle = callback
            callback = handle.callback
            handle.callback = None  # the handle can no longer be cancelled
            handle.time = -1.0  # dead handle: never leak a stale timestamp
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue (optionally bounded) and return the final time.

        The loop is the simulation's hottest code: every event — cancelled or
        live, batched same-timestamp groups included — is dispatched inline
        here without a per-event :meth:`step` call.  Dispatch order is
        identical to repeated ``step()``: strictly non-decreasing ``time``,
        FIFO by sequence number among equal timestamps.
        """
        queue = self._queue
        slab = self._handle_slab
        heappop = heapq.heappop
        processed = 0
        while True:
            queue = self._queue  # _compact (via callbacks) may swap the list
            if not queue:
                break
            entry = queue[0]
            callback = entry[2]
            if type(callback) is EventHandle:
                if callback.callback is None:
                    # Lazily discard a cancelled entry at the front.
                    heappop(queue)
                    self._cancelled_in_queue -= 1
                    if len(slab) < _SLAB_MAX:
                        slab.append(callback)
                    continue
                if until is not None and entry[0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heappop(queue)
                self.now = entry[0]
                self._events_processed += 1
                processed += 1
                handle = callback
                callback = handle.callback
                handle.callback = None  # the handle can no longer be cancelled
                handle.time = -1.0  # dead handle: never leak a stale timestamp
                callback()
            else:
                if until is not None and entry[0] > until:
                    self.now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heappop(queue)
                self.now = entry[0]
                self._events_processed += 1
                processed += 1
                callback()
        return self.now
