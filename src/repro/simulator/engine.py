"""Minimal discrete-event engine.

The engine keeps a priority queue of timestamped callbacks.  Resources
(:mod:`repro.simulator.resources`) schedule their own completion events; the
runtime's scheduler reacts to completions by releasing dependent tasks, which
in turn request resources.  ``run()`` drains the queue and returns the final
virtual time.

Events can be *cancelled* through the handle :meth:`Engine.schedule` returns.
Cancelled entries stay in the heap (removing an arbitrary heap element is
O(n)) but are discarded unprocessed when they reach the front: they are never
invoked and never counted in :attr:`Engine.events_processed`.  This is what
lets the shared-bandwidth links re-arm their single wake-up whenever the
earliest completion time moves, instead of letting stale wake-ups fire as
spurious no-op events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """Handle to one scheduled event; supports cancellation before it fires."""

    __slots__ = ("time", "callback", "_engine")

    def __init__(self, engine: "Engine", time: float, callback: Callable[[], Any]):
        self._engine = engine
        self.time = time
        self.callback: Optional[Callable[[], Any]] = callback

    @property
    def cancelled(self) -> bool:
        """True when :meth:`cancel` was called before the event fired."""
        return self.callback is None

    def cancel(self) -> bool:
        """Cancel the event; returns False when already cancelled or fired."""
        if self.callback is None:
            return False
        self.callback = None
        self._engine._on_cancel()
        return True


class Engine:
    """Priority-queue driven virtual clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        #: Heap entries are ``(time, seq, callback-or-EventHandle)``.  Plain
        #: callables are the allocation-free common case; only callers that
        #: need cancellation (:meth:`schedule_cancellable`) pay for a handle.
        self._queue: List[Tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._events_cancelled = 0
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_cancellable(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Like :meth:`schedule`, but returns a handle that can cancel the event."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        handle = EventHandle(self, time, callback)
        heapq.heappush(self._queue, (time, next(self._counter), handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def call_soon(self, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at the current virtual time, after pending same-time events."""
        self.schedule(0.0, callback)

    def _on_cancel(self) -> None:
        self._events_cancelled += 1
        self._cancelled_in_queue += 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Events scheduled but not yet processed (cancelled ones excluded)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Events that were scheduled but cancelled before they could fire."""
        return self._events_cancelled

    def _prune_cancelled(self) -> None:
        """Drop cancelled entries sitting at the front of the queue."""
        while (
            self._queue
            and type(self._queue[0][2]) is EventHandle
            and self._queue[0][2].callback is None
        ):
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        self._prune_cancelled()
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise RuntimeError("event queue went backwards in time")
        self.now = time
        self._events_processed += 1
        if type(callback) is EventHandle:
            handle = callback
            callback = handle.callback
            handle.callback = None  # the handle can no longer be cancelled
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue (optionally bounded) and return the final time."""
        processed = 0
        while True:
            self._prune_cancelled()
            if not self._queue:
                break
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self.now
