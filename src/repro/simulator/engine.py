"""Minimal discrete-event engine.

The engine keeps a priority queue of timestamped callbacks.  Resources
(:mod:`repro.simulator.resources`) schedule their own completion events; the
runtime's scheduler reacts to completions by releasing dependent tasks, which
in turn request resources.  ``run()`` drains the queue and returns the final
virtual time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Engine"]


class Engine:
    """Priority-queue driven virtual clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable[[], Any]]] = []
        self._counter = itertools.count()
        self._events_processed = 0

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` ``delay`` seconds of virtual time from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at absolute virtual time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def call_soon(self, callback: Callable[[], Any]) -> None:
        """Run ``callback`` at the current virtual time, after pending same-time events."""
        self.schedule(0.0, callback)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise RuntimeError("event queue went backwards in time")
        self.now = time
        self._events_processed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue (optionally bounded) and return the final time."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self.now
