"""Full applications built on the public API.

Currently one application, matching the paper's Sec. 4.6: geospatial
co-clustering from the CGC library, ported to Lightning-style kernels.
"""

from .cgc import CoClusteringApp, coclustering_reference, CGC_DATASETS

__all__ = ["CoClusteringApp", "coclustering_reference", "CGC_DATASETS"]
