"""Full applications built on the public API.

Currently one application, matching the paper's Sec. 4.6: geospatial
co-clustering from the CGC library, ported to Lightning-style kernels.
"""

from .cgc import (
    CGC_DATASETS,
    CGCWorkload,
    CoClusteringApp,
    EnsembleWorkload,
    coclustering_reference,
)

__all__ = [
    "CoClusteringApp",
    "coclustering_reference",
    "CGC_DATASETS",
    "CGCWorkload",
    "EnsembleWorkload",
]
