"""Geospatial co-clustering (CGC) — the full application of Sec. 4.6.

The CGC library clusters the rows and the columns of a matrix whose two
dimensions correspond to space and time (e.g. the onset of spring across
Europe over many years).  Each iteration involves three reductions — along the
rows, along the columns and over all entries — which makes the multi-GPU
version communication-intensive.

The algorithm implemented here is Bregman block-average co-clustering with a
squared-Euclidean divergence, expressed as five annotated kernels:

1. ``cgc_stats`` — co-cluster sums and counts over *all entries*
   (``reduce(+)`` into small replicated arrays);
2. ``cgc_means`` — co-cluster means from sums/counts;
3. ``cgc_row_update`` — reassign every row (a reduction along the columns,
   which are local to the row-distributed chunks);
4. ``cgc_col_cost`` — per-column cost against every column cluster
   (a reduction along the rows, expressed with ``reduce(+)`` so no transpose
   of the distributed matrix is ever materialised);
5. ``cgc_col_update`` — reassign every column from the cost table.

The matrix is row-distributed; assignments, means and cost tables are small
and replicated.  The paper's three dataset sizes (5, 20 and 80 GB) correspond
to square float64 matrices of side 25 000, 50 000 and 100 000.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.context import Context
from ..core.distributions import BlockDist, BlockWorkDist, ReplicatedDist, RowDist, TileWorkDist
from ..core.kernel import KernelDef
from ..perfmodel.costs import KernelCost
from ..kernels.base import Workload, register_workload

__all__ = [
    "CoClusteringApp",
    "coclustering_reference",
    "CGC_DATASETS",
    "CGCWorkload",
    "EnsembleWorkload",
]

#: The paper's three input matrices: side length and resulting size in bytes.
CGC_DATASETS: Dict[str, Tuple[int, int]] = {
    "5GB": (25_000, 25_000 * 25_000 * 8),
    "20GB": (50_000, 50_000 * 50_000 * 8),
    "80GB": (100_000, 100_000 * 100_000 * 8),
}

ROW_CLUSTERS = 20
COL_CLUSTERS = 20

# All CGC kernels are memory-bandwidth bound (the paper's modest 4.42x GPU
# speedup over 24 CPU cores reflects exactly that), hence high byte counts and
# moderate efficiencies.
STATS_COST = KernelCost(flops_per_thread=4.0, bytes_per_thread=10.0, efficiency=0.45,
                        cpu_efficiency=0.9)
MEANS_COST = KernelCost(flops_per_thread=2.0, bytes_per_thread=24.0)
ROW_UPDATE_COST = KernelCost(
    flops_per_thread=lambda s: 3.0 * float(s["k_row"]) * float(s["cols"]),
    bytes_per_thread=lambda s: 8.0 * float(s["cols"]),
    efficiency=0.45,
    cpu_efficiency=0.9,
)
COL_COST_COST = KernelCost(
    flops_per_thread=lambda s: 3.0 * float(s["k_col"]),
    bytes_per_thread=10.0,
    efficiency=0.45,
    cpu_efficiency=0.9,
)
COL_UPDATE_COST = KernelCost(flops_per_thread=8.0, bytes_per_thread=160.0)


# --------------------------------------------------------------------------- #
# NumPy reference (also the functional core of the CPU baseline)
# --------------------------------------------------------------------------- #
def coclustering_reference(
    matrix: np.ndarray,
    row_assign: np.ndarray,
    col_assign: np.ndarray,
    k_row: int,
    k_col: int,
    iterations: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference co-clustering; returns the final (row_assign, col_assign)."""
    matrix = matrix.astype(np.float64)
    row_assign = row_assign.astype(np.int64).copy()
    col_assign = col_assign.astype(np.int64).copy()
    for _ in range(iterations):
        sums = np.zeros((k_row, k_col))
        counts = np.zeros((k_row, k_col))
        np.add.at(sums, (row_assign[:, None], col_assign[None, :]), matrix)
        np.add.at(counts, (row_assign[:, None], col_assign[None, :]), 1.0)
        means = sums / np.maximum(counts, 1.0)

        # Row update: cost of assigning row i to row-cluster a.
        cm_cols = means[:, col_assign]                       # (k_row, cols)
        row_costs = (
            (matrix[:, None, :] - cm_cols[None, :, :]) ** 2
        ).sum(axis=2)                                        # (rows, k_row)
        row_assign = row_costs.argmin(axis=1)

        # Column update: cost of assigning column j to column-cluster b.
        cm_rows = means[row_assign, :]                       # (rows, k_col)
        col_costs = (
            (matrix[:, :, None] - cm_rows[:, None, :]) ** 2
        ).sum(axis=0)                                        # (cols, k_col)
        col_assign = col_costs.argmin(axis=1)
    return row_assign, col_assign


# --------------------------------------------------------------------------- #
# the five annotated kernels
# --------------------------------------------------------------------------- #
def _stats_kernel(lc, rows, cols, k_row, k_col, Z, row_assign, col_assign, ccsum, cccnt):
    ii, jj = lc.global_grid()
    mask = (ii < rows) & (jj < cols)
    if not mask.any():
        return
    i0, i1 = int(ii[mask].min()), int(ii[mask].max()) + 1
    z = Z[i0:i1, 0:cols].astype(np.float64)
    ra = row_assign[i0:i1].astype(np.int64)
    ca = col_assign[0:cols].astype(np.int64)
    sums = np.zeros((k_row, k_col))
    counts = np.zeros((k_row, k_col))
    np.add.at(sums, (ra[:, None], ca[None, :]), z)
    np.add.at(counts, (ra[:, None], ca[None, :]), 1.0)
    ccsum[0:k_row, 0:k_col] = ccsum[0:k_row, 0:k_col] + sums
    cccnt[0:k_row, 0:k_col] = cccnt[0:k_row, 0:k_col] + counts


def _means_kernel(lc, k_row, k_col, ccsum, cccnt, cmeans):
    a, b = lc.global_grid()
    mask = (a < k_row) & (b < k_col)
    a, b = a[mask], b[mask]
    if a.size == 0:
        return
    counts = cccnt.gather(a, b)
    cmeans.scatter(a, b, ccsum.gather(a, b) / np.maximum(counts, 1.0))


def _row_update_kernel(lc, rows, cols, k_row, k_col, Z, col_assign, cmeans, row_assign):
    i = lc.global_indices(0)
    i = i[i < rows]
    if i.size == 0:
        return
    z = Z[i.min():i.max() + 1, 0:cols].astype(np.float64)
    ca = col_assign[0:cols].astype(np.int64)
    means = cmeans[0:k_row, 0:k_col]
    cm_cols = means[:, ca]                                   # (k_row, cols)
    costs = ((z[:, None, :] - cm_cols[None, :, :]) ** 2).sum(axis=2)
    row_assign.scatter(i, costs.argmin(axis=1).astype(np.int32))


def _col_cost_kernel(lc, rows, cols, k_row, k_col, Z, row_assign, cmeans, colcost):
    ii, jj = lc.global_grid()
    mask = (ii < rows) & (jj < cols)
    if not mask.any():
        return
    i0, i1 = int(ii[mask].min()), int(ii[mask].max()) + 1
    z = Z[i0:i1, 0:cols].astype(np.float64)
    ra = row_assign[i0:i1].astype(np.int64)
    means = cmeans[0:k_row, 0:k_col]
    cm_rows = means[ra, :]                                   # (local rows, k_col)
    partial = ((z[:, :, None] - cm_rows[:, None, :]) ** 2).sum(axis=0)  # (cols, k_col)
    colcost[0:cols, 0:k_col] = colcost[0:cols, 0:k_col] + partial


def _col_update_kernel(lc, cols, k_col, colcost, col_assign):
    j = lc.global_indices(0)
    j = j[j < cols]
    if j.size == 0:
        return
    costs = colcost[j.min():j.max() + 1, 0:k_col]
    col_assign.scatter(j, costs.argmin(axis=1).astype(np.int32))


# --------------------------------------------------------------------------- #
# the application
# --------------------------------------------------------------------------- #
class CoClusteringApp:
    """The CGC co-clustering application on top of the Lightning-style API."""

    def __init__(
        self,
        ctx: Context,
        rows: int,
        cols: Optional[int] = None,
        k_row: int = ROW_CLUSTERS,
        k_col: int = COL_CLUSTERS,
        rows_per_chunk: Optional[int] = None,
        seed: int = 0,
    ):
        self.ctx = ctx
        self.rows = rows
        self.cols = cols if cols is not None else rows
        self.k_row = k_row
        self.k_col = k_col
        # Default chunking: ~0.5 GB chunks as recommended in Sec. 2.2.  The row
        # count per chunk is rounded down to a multiple of the thread-block row
        # granularity used by the kernels (16 for the 2-D launches, 128 for the
        # 1-D launches) so superblock boundaries coincide with chunk boundaries;
        # a misaligned chunking is still correct but forces the planner to
        # assemble temporary chunks for every superblock on every iteration.
        if rows_per_chunk is None:
            target_bytes = 512 * 1024 ** 2
            rows_per_chunk = max(1, min(self.rows, target_bytes // (self.cols * 8)))
            if rows_per_chunk > 128:
                rows_per_chunk -= rows_per_chunk % 128
        self.rows_per_chunk = rows_per_chunk
        self.seed = seed
        self._prepared = False

    # ------------------------------------------------------------------ #
    def prepare(self, matrix: Optional[np.ndarray] = None) -> None:
        """Create the distributed arrays and compile the kernels."""
        ctx = self.ctx
        row_dist = RowDist(self.rows_per_chunk)
        assign_dist = BlockDist(self.rows_per_chunk)
        replicated = ReplicatedDist()

        if ctx.functional:
            rng = np.random.RandomState(self.seed)
            if matrix is None:
                matrix = rng.rand(self.rows, self.cols)
            matrix = matrix.astype(np.float64)
            row0 = (np.arange(self.rows) % self.k_row).astype(np.int32)
            col0 = (np.arange(self.cols) % self.k_col).astype(np.int32)
            self.Z = ctx.from_numpy(matrix, row_dist, name="cgc_Z")
            self.row_assign = ctx.from_numpy(row0, assign_dist, name="cgc_row_assign")
            self.col_assign = ctx.from_numpy(col0, replicated, name="cgc_col_assign")
            self._matrix0, self._row0, self._col0 = matrix, row0, col0
        else:
            self.Z = ctx.zeros((self.rows, self.cols), row_dist, dtype="float64", name="cgc_Z")
            self.row_assign = ctx.zeros(self.rows, assign_dist, dtype="int32",
                                        name="cgc_row_assign")
            self.col_assign = ctx.zeros(self.cols, replicated, dtype="int32",
                                        name="cgc_col_assign")
        self.ccsum = ctx.zeros((self.k_row, self.k_col), replicated, dtype="float64",
                               name="cgc_ccsum")
        self.cccnt = ctx.zeros((self.k_row, self.k_col), replicated, dtype="float64",
                               name="cgc_cccnt")
        self.cmeans = ctx.zeros((self.k_row, self.k_col), replicated, dtype="float64",
                                name="cgc_cmeans")
        self.colcost = ctx.zeros((self.cols, self.k_col), replicated, dtype="float64",
                                 name="cgc_colcost")
        self._compile_kernels()
        self._prepared = True

    def _compile_kernels(self) -> None:
        ctx = self.ctx
        self.k_stats = (
            KernelDef("cgc_stats", func=_stats_kernel)
            .param_value("rows", "int64").param_value("cols", "int64")
            .param_value("k_row", "int64").param_value("k_col", "int64")
            .param_array("Z", "float64")
            .param_array("row_assign", "int32")
            .param_array("col_assign", "int32")
            .param_array("ccsum", "float64")
            .param_array("cccnt", "float64")
            .annotate(
                "global [i, j] => read Z[i,j], read row_assign[i], read col_assign[j], "
                "reduce(+) ccsum[:,:], reduce(+) cccnt[:,:]"
            )
            .with_cost(STATS_COST)
            .compile(ctx)
        )
        self.k_means = (
            KernelDef("cgc_means", func=_means_kernel)
            .param_value("k_row", "int64").param_value("k_col", "int64")
            .param_array("ccsum", "float64")
            .param_array("cccnt", "float64")
            .param_array("cmeans", "float64")
            .annotate("global [a, b] => read ccsum[a,b], read cccnt[a,b], write cmeans[a,b]")
            .with_cost(MEANS_COST)
            .compile(ctx)
        )
        self.k_row_update = (
            KernelDef("cgc_row_update", func=_row_update_kernel)
            .param_value("rows", "int64").param_value("cols", "int64")
            .param_value("k_row", "int64").param_value("k_col", "int64")
            .param_array("Z", "float64")
            .param_array("col_assign", "int32")
            .param_array("cmeans", "float64")
            .param_array("row_assign", "int32")
            .annotate(
                "global i => read Z[i,:], read col_assign[:], read cmeans[:,:], "
                "write row_assign[i]"
            )
            .with_cost(ROW_UPDATE_COST)
            .compile(ctx)
        )
        self.k_col_cost = (
            KernelDef("cgc_col_cost", func=_col_cost_kernel)
            .param_value("rows", "int64").param_value("cols", "int64")
            .param_value("k_row", "int64").param_value("k_col", "int64")
            .param_array("Z", "float64")
            .param_array("row_assign", "int32")
            .param_array("cmeans", "float64")
            .param_array("colcost", "float64")
            .annotate(
                "global [i, j] => read Z[i,j], read row_assign[i], read cmeans[:,:], "
                "reduce(+) colcost[j,:]"
            )
            .with_cost(COL_COST_COST)
            .compile(ctx)
        )
        self.k_col_update = (
            KernelDef("cgc_col_update", func=_col_update_kernel)
            .param_value("cols", "int64").param_value("k_col", "int64")
            .param_array("colcost", "float64")
            .param_array("col_assign", "int32")
            .annotate("global j => read colcost[j,:], write col_assign[j]")
            .with_cost(COL_UPDATE_COST)
            .compile(ctx)
        )

    # ------------------------------------------------------------------ #
    def submit_iteration(self) -> None:
        """Submit the kernel launches of one co-clustering iteration."""
        rows, cols, k_row, k_col = self.rows, self.cols, self.k_row, self.k_col
        entries_work = BlockWorkDist(self.rows_per_chunk, axis=0)
        rows_work = BlockWorkDist(self.rows_per_chunk)
        scalars_grid = (rows, cols)
        self.k_stats.launch(
            scalars_grid, (16, 16), entries_work,
            (rows, cols, k_row, k_col, self.Z, self.row_assign, self.col_assign,
             self.ccsum, self.cccnt),
        )
        self.k_means.launch(
            (k_row, k_col), (8, 8), TileWorkDist((k_row, k_col)),
            (k_row, k_col, self.ccsum, self.cccnt, self.cmeans),
        )
        self.k_row_update.launch(
            rows, 128, rows_work,
            (rows, cols, k_row, k_col, self.Z, self.col_assign, self.cmeans, self.row_assign),
        )
        self.k_col_cost.launch(
            scalars_grid, (16, 16), entries_work,
            (rows, cols, k_row, k_col, self.Z, self.row_assign, self.cmeans, self.colcost),
        )
        self.k_col_update.launch(
            cols, 128, BlockWorkDist(max(1, -(-cols // self.ctx.device_count))),
            (cols, k_col, self.colcost, self.col_assign),
        )

    def run(self, iterations: int = 1) -> float:
        """Run ``iterations`` and return the virtual time per iteration (Sec. 4.6)."""
        if not self._prepared:
            self.prepare()
        self.ctx.synchronize()
        start = self.ctx.virtual_time
        for _ in range(iterations):
            self.submit_iteration()
        end = self.ctx.synchronize()
        return (end - start) / max(iterations, 1)

    # ------------------------------------------------------------------ #
    def data_bytes(self) -> int:
        """Problem size in bytes (the throughput denominator)."""
        return self.rows * self.cols * 8

    def assignments(self) -> Tuple[np.ndarray, np.ndarray]:
        """Gather the final row and column assignments (functional mode)."""
        return self.ctx.gather(self.row_assign), self.ctx.gather(self.col_assign)

    def verify(self, iterations: int) -> bool:
        """Compare against the NumPy reference after ``iterations`` iterations."""
        rows, cols = self.assignments()
        ref_rows, ref_cols = coclustering_reference(
            self._matrix0, self._row0, self._col0, self.k_row, self.k_col, iterations
        )
        return bool(np.array_equal(rows, ref_rows) and np.array_equal(cols, ref_cols))

    def kernel_cost_sequence(self):
        """(cost, threads, scalars) per kernel of one iteration — used by the baselines."""
        scalars = {
            "rows": self.rows, "cols": self.cols,
            "k_row": self.k_row, "k_col": self.k_col,
        }
        entries = self.rows * self.cols
        return [
            (STATS_COST, entries, scalars),
            (MEANS_COST, self.k_row * self.k_col, scalars),
            (ROW_UPDATE_COST, self.rows, scalars),
            (COL_COST_COST, entries, scalars),
            (COL_UPDATE_COST, self.cols, scalars),
        ]


@register_workload
class CGCWorkload(Workload):
    """Workload adapter so the harness can treat CGC like the other benchmarks.

    The problem size ``n`` is the number of matrix entries; one iteration is
    timed (the paper reports time per iteration).
    """

    name = "cgc"
    compute_intensive = False
    iterations = 1

    def __init__(self, ctx, n, iterations: int | None = None, **params):
        super().__init__(ctx, n, **params)
        side = max(2, int(round(self.n ** 0.5)))
        self.app = CoClusteringApp(ctx, side, side, **params)
        if iterations is not None:
            self.iterations = iterations

    def prepare(self) -> None:
        """Create the distributed arrays and compile the kernels."""
        self.app.prepare()

    def submit(self) -> None:
        """Queue every kernel launch of the benchmark (asynchronously)."""
        for _ in self.steps():
            pass

    def steps(self):
        """One serving quantum per co-clustering iteration."""
        for _ in range(self.iterations):
            self.app.submit_iteration()
            yield

    def data_bytes(self) -> int:
        """Problem size in bytes (the throughput denominator)."""
        return self.app.data_bytes()

    def verify(self) -> bool:
        """Check gathered results against the NumPy reference (functional mode)."""
        return self.app.verify(self.iterations)


@register_workload
class EnsembleWorkload(Workload):
    """CGC ``nruns``-style ensemble: several differently-seeded co-clustering
    runs of the same matrix size, interleaved iteration by iteration.

    The CGC library restarts the whole co-clustering ``nruns`` times from
    different random initialisations and keeps the best run — embarrassingly
    parallel work that the multi-tenant serving layer schedules as concurrent
    jobs.  As a plain workload the runs share one context, so the ensemble
    also serves as the single-tenant baseline the serving benchmark compares
    against.  ``n`` is the number of matrix entries *per run*.
    """

    name = "ensemble"
    compute_intensive = False
    iterations = 1

    def __init__(self, ctx, n, nruns: int = 4, iterations: int | None = None,
                 seed: int = 0, **params):
        super().__init__(ctx, n, **params)
        side = max(2, int(round(self.n ** 0.5)))
        if iterations is not None:
            self.iterations = iterations
        self.nruns = int(nruns)
        self.seed = int(seed)
        self.apps = [
            CoClusteringApp(ctx, side, side, seed=self.seed + run, **params)
            for run in range(self.nruns)
        ]

    def prepare(self) -> None:
        """Create every run's arrays; kernels compile once (idempotent)."""
        for app in self.apps:
            app.prepare()

    def submit(self) -> None:
        """Queue every kernel launch of the benchmark (asynchronously)."""
        for _ in self.steps():
            pass

    def steps(self):
        """One serving quantum per (iteration, run) pair, runs innermost —
        the same interleaving a round-robin over ``nruns`` jobs produces."""
        for _ in range(self.iterations):
            for app in self.apps:
                app.submit_iteration()
                yield

    def data_bytes(self) -> int:
        """Problem size in bytes (the throughput denominator)."""
        return sum(app.data_bytes() for app in self.apps)

    def verify(self) -> bool:
        """Every run must match its own reference trajectory."""
        return all(app.verify(self.iterations) for app in self.apps)
