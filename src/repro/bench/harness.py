"""Helpers for regenerating the paper's figures.

Every benchmark file in ``benchmarks/`` uses the same three steps:

1. build a context for the cluster shape under test (``make_context``),
2. run one registered workload at one problem size (``run_workload``),
3. print/save the series in a paper-like table (``format_table`` /
   ``save_results``).

Benchmarks run in ``simulate`` execution mode so the paper's problem sizes
(tens to hundreds of GB of virtual data) can be swept: the planner, the
scheduler, the memory manager (including spilling) and the communication
layer all run for real; only the chunk payloads are elided.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.context import Context
from ..hardware.specs import azure_nc24rsv2
from ..kernels import create_workload
from ..runtime.system import ExecutionMode, RuntimeStats

__all__ = [
    "BenchPoint",
    "make_context",
    "run_workload",
    "run_workload_with_stats",
    "gpu_memory_limit",
    "host_memory_limit",
    "format_table",
    "save_results",
    "save_json",
    "write_json",
    "json_text",
    "scaled",
]


def scaled(n: int, floor: int = 1) -> int:
    """Scale a problem size by the ``REPRO_EXAMPLE_SCALE`` environment variable.

    The example scripts wrap their problem sizes in ``scaled(...)`` so the CI
    examples-smoke job can run every script end to end with tiny inputs
    (``REPRO_EXAMPLE_SCALE=1e-3``) while humans running them unmodified get
    the documented sizes (the default scale is 1).
    """
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1") or "1")
    return max(int(floor), int(n * scale))

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results")


@dataclass(frozen=True)
class BenchPoint:
    """One measured point of a figure series."""

    benchmark: str
    nodes: int
    gpus_per_node: int
    problem_size: float
    data_gb: float
    elapsed: float
    throughput: float
    extra: str = ""

    @property
    def gpus(self) -> int:
        """Total GPUs of the measured configuration."""
        return self.nodes * self.gpus_per_node


def make_context(
    nodes: int = 1,
    gpus_per_node: int = 1,
    mode: ExecutionMode | str = ExecutionMode.SIMULATE,
    **kwargs,
) -> Context:
    """A context on the paper's Azure NC24rsV2 node type."""
    return Context(azure_nc24rsv2(nodes=nodes, gpus_per_node=gpus_per_node), mode=mode, **kwargs)


def run_workload(
    name: str,
    n: int,
    nodes: int = 1,
    gpus_per_node: int = 1,
    mode: ExecutionMode | str = ExecutionMode.SIMULATE,
    context_kwargs: Optional[Dict] = None,
    **workload_params,
) -> BenchPoint:
    """Run one workload once and return the figure point."""
    point, _ = run_workload_with_stats(
        name, n, nodes=nodes, gpus_per_node=gpus_per_node, mode=mode,
        context_kwargs=context_kwargs, **workload_params,
    )
    return point


def run_workload_with_stats(
    name: str,
    n: int,
    nodes: int = 1,
    gpus_per_node: int = 1,
    mode: ExecutionMode | str = ExecutionMode.SIMULATE,
    context_kwargs: Optional[Dict] = None,
    **workload_params,
) -> Tuple[BenchPoint, RuntimeStats]:
    """Like :func:`run_workload` but also return the run's :class:`RuntimeStats`."""
    ctx = make_context(nodes, gpus_per_node, mode, **(context_kwargs or {}))
    workload = create_workload(name, ctx, n, **workload_params)
    result = workload.run()
    point = BenchPoint(
        benchmark=name,
        nodes=nodes,
        gpus_per_node=gpus_per_node,
        problem_size=float(n),
        data_gb=result.data_bytes / 1e9,
        elapsed=result.elapsed,
        throughput=result.throughput,
    )
    return point, ctx.stats()


def gpu_memory_limit(gpus: int = 1) -> int:
    """Combined GPU memory of ``gpus`` P100s in bytes (the first vertical bar)."""
    return gpus * azure_nc24rsv2(1, 1).node.gpus[0].memory_bytes


def host_memory_limit(nodes: int = 1) -> int:
    """Combined host memory of ``nodes`` nodes in bytes (the second vertical bar)."""
    return nodes * azure_nc24rsv2(1, 1).node.host_memory_bytes


def format_table(points: Sequence[BenchPoint], title: str = "") -> str:
    """Human-readable table, one row per point, grouped the way the figures are."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = (
        f"{'benchmark':>14s} {'nodes':>5s} {'gpus/node':>9s} {'n':>12s} "
        f"{'data[GB]':>9s} {'time[s]':>10s} {'throughput[n/s]':>16s} {'notes':>12s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for p in points:
        lines.append(
            f"{p.benchmark:>14s} {p.nodes:>5d} {p.gpus_per_node:>9d} {p.problem_size:>12.3g} "
            f"{p.data_gb:>9.2f} {p.elapsed:>10.4f} {p.throughput:>16.3e} {p.extra:>12s}"
        )
    return "\n".join(lines)


def save_results(filename: str, text: str) -> str:
    """Write a result table under ``benchmarks/results/`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def write_json(path: str, payload) -> str:
    """Write ``payload`` in the repo's machine-readable result convention.

    One definition of the format (indented, key-sorted, trailing newline) so
    ``benchmarks/results/*.json``, CLI ``--stats-json`` dumps and the perf
    harness baseline all stay diffable with the same tooling.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json_text(payload) + "\n")
    return path


def json_text(payload) -> str:
    """The result-convention JSON serialisation as a string."""
    return json.dumps(payload, indent=2, sort_keys=True)


def save_json(filename: str, payload) -> str:
    """Write a machine-readable result under ``benchmarks/results/``.

    All benchmark harnesses record their measurements this way so the perf
    trajectory of the repo is diffable and scriptable (``results/*.json``).
    """
    return write_json(os.path.join(RESULTS_DIR, filename), payload)
