"""Benchmark harness shared by the ``benchmarks/`` suite.

The harness runs the registered workloads on simulated clusters of the
paper's node type, collects throughput series and writes the per-figure
result tables that EXPERIMENTS.md references.
"""

from .harness import (
    BenchPoint,
    format_table,
    gpu_memory_limit,
    host_memory_limit,
    json_text,
    make_context,
    run_workload,
    run_workload_with_stats,
    save_json,
    save_results,
    scaled,
    write_json,
)

__all__ = [
    "BenchPoint",
    "format_table",
    "gpu_memory_limit",
    "host_memory_limit",
    "json_text",
    "make_context",
    "run_workload",
    "run_workload_with_stats",
    "save_json",
    "save_results",
    "scaled",
    "write_json",
]
