"""Lazy expressions: whole formulas fused into a handful of generated kernels.

Array operators (``+ - * /``, ``repro.core.expr.sqrt``/``exp``/``log``,
slicing, ``.sum()``) record a DAG instead of launching anything.  At a
barrier — ``gather``, ``synchronize`` or ``.evaluate()`` — the DAG is lowered:
elementwise subgraphs fuse into generated map kernels, interior temporaries
are never allocated, and a dead input buffer can be reused in place.  The
same script under ``Context(lazy=False)`` launches one kernel per operator,
which is exactly what ``benchmarks/bench_expr.py`` measures against.

Run with:  python examples/expressions.py
"""

import numpy as np

from repro import BlockDist, Context, azure_nc24rsv2
from repro.bench import scaled
from repro.core.expr import graph as ex


def smooth_norm(ctx, n):
    """A small pipeline: neighbour average, then a normalised exponential."""
    dist = BlockDist(max(256, n // 8))
    rng = np.random.default_rng(7)
    data = rng.uniform(0.5, 2.0, n).astype(np.float32)
    x = ctx.from_numpy(data, dist, name="x")

    # Neighbour average via aliased slices of the same array (one fused
    # kernel reads x at three offsets), then exp-normalise.  None of the
    # intermediates below allocates distributed storage.
    smooth = (x[:-2] + x[1:-1] + x[2:]) / 3.0
    weight = ex.exp(-smooth * smooth)
    total = weight.sum()

    values = ctx.gather(weight)  # the barrier: the whole DAG lowers here
    total = ctx.gather(total)[0]

    padded = data
    ref_smooth = (padded[:-2] + padded[1:-1] + padded[2:]) / np.float32(3.0)
    ref_weight = np.exp(-ref_smooth * ref_smooth)
    return values, total, ref_weight


def main():
    n = scaled(1_000_000, floor=4_096)
    with Context(azure_nc24rsv2(nodes=1, gpus_per_node=4)) as ctx:
        values, total, ref = smooth_norm(ctx, n)
        stats = ctx.stats()
        print(f"cluster             : {ctx.describe()}")
        print(f"expressions lowered : {stats.exprs_lowered}")
        print(f"nodes fused         : {stats.expr_nodes_fused}")
        print(f"temporaries elided  : {stats.temporaries_elided} "
              f"({stats.temporaries_elided_bytes} bytes never allocated)")
        print(f"matches NumPy       : "
              f"{np.allclose(values, ref, rtol=1e-5, atol=1e-6)}")
        print(f"sum(weight)         : {total:.4f} "
              f"(reference {ref.astype(np.float64).sum():.4f})")


if __name__ == "__main__":
    main()
