"""Distributed dense matrix multiplication across two nodes.

Reproduces the paper's GEMM setup on a small matrix: A, B and C are
row-partitioned, the work follows the same partitioning, and the runtime
automatically broadcasts the whole of B to every GPU (the paper's most
communication-intensive benchmark).  The example prints how much data crossed
the (virtual) network to make that visible.

Run with:  python examples/matrix_multiply.py
"""

import numpy as np

from repro import Context, azure_nc24rsv2
from repro.kernels import GEMMWorkload


def main():
    ctx = Context(azure_nc24rsv2(nodes=2, gpus_per_node=2))
    # n is the total work (m^3); m = 192 here.
    workload = GEMMWorkload(ctx, n=192 ** 3, chunk_elems=192 * 48, seed=3)
    result = workload.run()

    product = ctx.gather(workload.C)
    expected = workload._a0 @ workload._b0

    stats = ctx.stats()
    print(f"cluster          : {ctx.describe()}")
    print(f"matrix           : {workload.m} x {workload.m}")
    print(f"virtual run time : {result.elapsed * 1e3:.3f} ms")
    print(f"network traffic  : {stats.network_bytes / 1e6:.2f} MB "
          f"({stats.network_messages} messages)")
    print(f"matches NumPy    : {np.allclose(product, expected, rtol=1e-3, atol=1e-3)}")


if __name__ == "__main__":
    main()
