"""The full CGC geospatial co-clustering application (paper Sec. 4.6).

Runs the five-kernel co-clustering pipeline on a small matrix across a
virtual 2-node x 2-GPU cluster, verifies the cluster assignments against the
NumPy reference implementation, and then models the paper's three dataset
sizes (5 / 20 / 80 GB) to show where the single-GPU CUDA baseline runs out of
memory while Lightning keeps working.

Run with:  python examples/cgc_coclustering.py
"""

from repro import Context, ExecutionMode, azure_nc24rsv2
from repro.apps import CGC_DATASETS, CoClusteringApp
from repro.baselines import CPUBaseline, SingleGPUBaseline, SingleGpuOutOfMemory
from repro.bench import scaled


def small_functional_run():
    ctx = Context(azure_nc24rsv2(nodes=2, gpus_per_node=2))
    app = CoClusteringApp(ctx, rows=96, cols=80, k_row=5, k_col=4, rows_per_chunk=24, seed=11)
    iterations = 3
    per_iteration = app.run(iterations=iterations)
    print("functional run (96 x 80 matrix, 2 nodes x 2 GPUs)")
    print(f"  time per iteration : {per_iteration * 1e3:.3f} ms (virtual)")
    print(f"  matches reference  : {app.verify(iterations)}")


def paper_scale_model():
    print("\npaper-scale datasets (simulate mode, 1 node x 4 GPUs)")
    cpu = CPUBaseline()
    cuda = SingleGPUBaseline()
    for label, (side, _) in CGC_DATASETS.items():
        ctx = Context(azure_nc24rsv2(nodes=1, gpus_per_node=4), mode=ExecutionMode.SIMULATE)
        app = CoClusteringApp(ctx, scaled(side, floor=1_000), scaled(side, floor=1_000))
        app.prepare()
        lightning = app.run(iterations=1)
        sequence = app.kernel_cost_sequence()
        numpy_time = cpu.run_time(sequence)
        try:
            cuda_time = f"{cuda.run_time(sequence, app.data_bytes()):8.3f} s"
        except SingleGpuOutOfMemory:
            cuda_time = "GPU fail: OoM"
        print(f"  {label:>5s}: NumPy {numpy_time:8.3f} s | CUDA 1 GPU {cuda_time} | "
              f"Lightning 4 GPUs {lightning:8.3f} s per iteration")


def main():
    small_functional_run()
    paper_scale_model()


if __name__ == "__main__":
    main()
