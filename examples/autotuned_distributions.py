"""Let the advisor choose the work/data distributions (future-work features).

Lightning normally requires the programmer to pick a distribution per array
and per launch.  This example shows the two assistance features built on top
of the reproduction:

1. the *analytic* chunk-size model and the *profiling* autotuner that find a
   good chunk size for K-Means on one simulated GPU (the trade-off of
   Fig. 10), and
2. the *static* distribution advisor that reads a matrix-multiplication
   annotation and proposes distributions for A, B and C plus an aligned
   superblock distribution, which are then used to run a real (small) GEMM
   and check it against NumPy.

Run with:  python examples/autotuned_distributions.py
"""

import numpy as np

from repro import Context, ExecutionMode, KernelDef, azure_nc24rsv2
from repro.autotune import (
    ChunkSizeAutotuner,
    recommend_chunk_bytes,
    suggest_kernel_distributions,
)
from repro.bench import scaled
from repro.kernels import create_workload


def tune_kmeans_chunk_size():
    print("Chunk-size selection (K-Means, one simulated P100)")
    print("---------------------------------------------------")
    advice = recommend_chunk_bytes()
    print(f"analytic range : {advice.min_bytes / 1e6:.0f} MB .. {advice.max_bytes / 1e9:.1f} GB "
          f"(recommended {advice.recommended_bytes / 1e6:.0f} MB)")
    print(f"  {advice.rationale}")

    n = scaled(300_000_000, floor=1_000_000)  # 4.8 GB of records: fits, but staging still matters

    def runner(chunk_elems):
        ctx = Context(azure_nc24rsv2(1, 1), mode=ExecutionMode.SIMULATE)
        return create_workload("kmeans", ctx, n, chunk_elems=chunk_elems).run().elapsed

    tuner = ChunkSizeAutotuner(runner=runner, element_bytes=16, advice=advice)
    best, timings = tuner.tune(candidates=[500_000, 4_000_000, 16_000_000, 64_000_000])
    print("profiled candidates:")
    for chunk, elapsed in sorted(timings.items()):
        marker = "  <== best" if chunk == best else ""
        print(f"  {chunk * 16 / 1e6:8.0f} MB chunks -> {elapsed:7.3f} s{marker}")
    print()


def advise_and_run_matmul():
    print("Distribution advice for C = A @ B")
    print("---------------------------------")
    side = max(192, scaled(768) // 16 * 16)  # keep 16x16 thread-block alignment
    annotation_text = "global [i, j] => read A[i,:], read B[:,j], write C[i,j]"

    def matmul_kernel(lc, m, A, B, C):
        ii, jj = lc.global_grid()
        rows = np.unique(ii[ii < m])
        cols = np.unique(jj[jj < m])
        if rows.size == 0 or cols.size == 0:
            return
        a = A[rows.min():rows.max() + 1, 0:m]
        b = B[0:m, cols.min():cols.max() + 1]
        C[rows.min():rows.max() + 1, cols.min():cols.max() + 1] = a @ b

    kernel_def = (
        KernelDef("advised_matmul", func=matmul_kernel)
        .param_value("m", "int64")
        .param_array("A", "float32")
        .param_array("B", "float32")
        .param_array("C", "float32")
        .annotate(annotation_text)
    )

    ctx = Context(azure_nc24rsv2(nodes=1, gpus_per_node=4))
    advice, work, rationale = suggest_kernel_distributions(
        kernel_def,
        {"A": (side, side), "B": (side, side), "C": (side, side)},
        grid=(side, side),
        block=(16, 16),
        device_count=ctx.device_count,
        target_chunk_bytes=256 * side * 4,  # keep chunks small at this toy size
    )
    for name, item in advice.items():
        print(f"  {name}: {item.distribution!r}")
        print(f"      {item.rationale}")
    print(f"  work: {work!r}")
    print(f"      {rationale}")

    rng = np.random.RandomState(0)
    a_np = rng.rand(side, side).astype(np.float32)
    b_np = rng.rand(side, side).astype(np.float32)
    A = ctx.from_numpy(a_np, advice["A"].distribution, name="A")
    B = ctx.from_numpy(b_np, advice["B"].distribution, name="B")
    C = ctx.zeros((side, side), advice["C"].distribution, dtype="float32", name="C")
    kernel = kernel_def.compile(ctx)
    kernel.launch((side, side), (16, 16), work, (side, A, B, C))
    result = ctx.gather(C)
    error = float(np.max(np.abs(result - a_np @ b_np)))
    print(f"  verified against NumPy, max abs error = {error:.2e}")


def main():
    tune_kmeans_chunk_size()
    advise_and_run_matmul()


if __name__ == "__main__":
    main()
