"""K-Means clustering on a multi-GPU node, using the runtime's reduction support.

This is the workload the paper uses throughout Sec. 4.3 (chunk-size and
problem-size sweeps).  The assignment kernel reduces per-cluster feature sums
and counts with ``reduce(+)`` annotations; a second small kernel derives the
new centroids.  Run on a small problem in functional mode so the clustering
result can be compared against a NumPy reference.

Run with:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro import Context, azure_nc24rsv2
from repro.kernels import KMeansWorkload, kmeans_reference


def main():
    ctx = Context(azure_nc24rsv2(nodes=1, gpus_per_node=4))
    workload = KMeansWorkload(ctx, n=20_000, chunk_elems=4_000, iterations=4, k=8, seed=7)
    result = workload.run()

    centroids = ctx.gather(workload.centroids)
    reference = kmeans_reference(
        workload._initial_points.astype(np.float64),
        workload._initial_centroids.astype(np.float64),
        workload.iterations,
    )

    print(f"cluster            : {ctx.describe()}")
    print(f"records            : {workload.n} x 4 features, k={workload.k}")
    print(f"virtual run time   : {result.elapsed * 1e3:.3f} ms")
    print(f"throughput         : {result.throughput:.3e} records/s")
    print(f"matches reference  : {np.allclose(centroids, reference, rtol=1e-3, atol=1e-4)}")
    stats = ctx.stats()
    print(f"tasks executed     : {stats.tasks_completed}")
    print(f"network messages   : {stats.network_messages}")


if __name__ == "__main__":
    main()
