"""Inspect what the planner and the runtime actually did (Fig. 4 + overlap claim).

Runs a few iterations of the 1-D stencil on a virtual 2-node cluster while
recording every execution plan, then

* rebuilds the merged task DAG (the paper's Fig. 4) and prints its structure
  (task counts, communication volume, critical path),
* writes the DAG as GraphViz DOT next to this script,
* exports the simulator's resource timeline as a Chrome trace
  (open it at chrome://tracing or https://ui.perfetto.dev) and reports how
  much of the PCIe traffic overlapped with kernel execution, and
* shows the plan-template cache at work: after the first ping-pong pair of
  launches, every further launch is re-stamped from a cached template
  instead of being planned from scratch.

Run with:  python examples/plan_inspection.py
"""

import os

import numpy as np

from repro import (
    BlockWorkDist,
    Context,
    KernelCost,
    KernelDef,
    StencilDist,
    azure_nc24rsv2,
)
from repro.analysis import PlanGraph, overlap_report, trace_to_chrome_json, utilisation_report
from repro.bench import scaled


def stencil_kernel(lc, n, output, input):
    i = lc.global_indices(0)
    i = i[i < n]
    left = input.gather(i - 1, fill=0.0)
    mid = input.gather(i)
    right = input.gather(i + 1, fill=0.0)
    output.scatter(i, (left + mid + right) / 3.0)


def main():
    # Two nodes with two GPUs each so the plan contains send/recv tasks, and
    # plan recording switched on so the DAG can be rebuilt afterwards.
    ctx = Context(azure_nc24rsv2(nodes=2, gpus_per_node=2), record_plans=True)
    n = scaled(512_000, floor=8_192)
    chunk = n // 8  # keep eight chunks so the DAG still has send/recv tasks
    dist = StencilDist(chunk_size=chunk, halo=1)
    input_ = ctx.ones(n, dist, dtype="float32")
    output = ctx.zeros(n, dist, dtype="float32")

    stencil = (
        KernelDef("stencil", func=stencil_kernel)
        .param_value("n", "int32")
        .param_array("output", "float32")
        .param_array("input", "float32")
        .annotate("global i => read input[i-1:i+1], write output[i]")
        .with_cost(KernelCost(flops_per_thread=3, bytes_per_thread=16))
        .compile(ctx)
    )

    work = BlockWorkDist(chunk)
    iterations = 8
    for _ in range(iterations):
        stencil.launch(n, 256, work, (n, output, input_))
        input_, output = output, input_
    makespan = ctx.synchronize()

    # ----- the plan-template cache ------------------------------------- #
    # The ping-pong swaps (output, input) every iteration, so there are two
    # launch signatures; after one cold plan each, every launch is a hit.
    stats = ctx.stats()
    print("Plan-template cache")
    print("-------------------")
    print(ctx.planner.cache.describe())
    print(
        f"{stats.plan_cache_hits} of {iterations} launches re-stamped from cache "
        f"({ctx.planner.planning_seconds * 1e3:.2f} ms spent planning)"
    )
    if ctx.planner.pass_stats:
        print("optimisation passes: " + ", ".join(
            f"{name}={value:g}" for name, value in sorted(ctx.planner.pass_stats.items())
        ))
    print()

    # ----- the task DAG (Fig. 4) -------------------------------------- #
    graph = PlanGraph.from_context(ctx)
    print("Execution-plan DAG")
    print("------------------")
    print(graph.summary())
    out_dir = os.path.dirname(os.path.abspath(__file__))
    dot_path = os.path.join(out_dir, "stencil_plan.dot")
    with open(dot_path, "w", encoding="utf-8") as handle:
        handle.write(graph.to_dot())
    print(f"DOT file written to {dot_path} (render with: dot -Tpdf -O {os.path.basename(dot_path)})")

    # ----- the timeline and the overlap claim -------------------------- #
    trace = ctx.trace()
    trace_path = os.path.join(out_dir, "stencil_trace.json")
    trace_to_chrome_json(trace, trace_path)
    print(f"\nChrome trace written to {trace_path} ({makespan * 1e3:.2f} ms simulated)")

    print("\nBusiest resources (fraction of the run they were active):")
    utilisation = utilisation_report(trace, makespan)
    for name, value in sorted(utilisation.items(), key=lambda kv: -kv[1])[:6]:
        print(f"  {name:<22s} {value:6.1%}")

    overlap = overlap_report(trace, ["w0.gpu", "w1.gpu"], ["w0.pcie", "w1.pcie"])
    print(
        f"\nPCIe traffic overlapped with GPU compute for {overlap.overlap * 1e3:.2f} ms "
        f"({overlap.overlap_fraction:.0%} of the smaller of the two busy times)."
    )

    result = ctx.gather(input_)
    print(f"\nChecksum of the final vector: {float(np.sum(result)):.1f}")


if __name__ == "__main__":
    main()
