"""Black-Scholes option pricing with more (virtual) data than one GPU can hold.

Runs the embarrassingly parallel Black-Scholes benchmark twice in *simulate*
mode: once with a dataset that fits into a single P100's memory and once with
one that exceeds it, printing how much data the memory manager spilled to
host memory and what that does to throughput (the paper's Fig. 12 story for
data-intensive benchmarks).

Run with:  python examples/black_scholes_options.py
"""

from repro import Context, ExecutionMode, azure_nc24rsv2
from repro.bench import scaled
from repro.kernels import BlackScholesWorkload


def price(n: int):
    ctx = Context(azure_nc24rsv2(nodes=1, gpus_per_node=1), mode=ExecutionMode.SIMULATE)
    workload = BlackScholesWorkload(ctx, n=n)
    result = workload.run()
    memory = ctx.stats().memory[0]
    return result, memory


def main():
    in_memory, mem_small = price(scaled(500_000_000))    # ~10 GB: fits in 16 GB
    spilled, mem_large = price(scaled(1_500_000_000, floor=3))  # ~30 GB: must spill

    print("Black-Scholes on one (simulated) P100")
    print("-" * 60)
    for label, result, mem in (
        ("fits in GPU memory", in_memory, mem_small),
        ("exceeds GPU memory", spilled, mem_large),
    ):
        print(f"{label}:")
        print(f"  options           : {result.problem_size:.2e}")
        print(f"  dataset           : {result.data_bytes / 1e9:.1f} GB")
        print(f"  virtual run time  : {result.elapsed:.3f} s")
        print(f"  throughput        : {result.throughput:.3e} options/s")
        print(f"  spilled to host   : {mem.bytes_from_gpu / 1e9:.1f} GB")
    slowdown = in_memory.throughput / spilled.throughput
    print(f"throughput drop when spilling: {slowdown:.1f}x "
          "(PCIe cannot keep up with this data-intensive kernel)")


if __name__ == "__main__":
    main()
