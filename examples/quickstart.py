"""Quickstart: the 1-D stencil from the paper (Figs. 6-9), end to end.

Creates two distributed vectors with a halo (stencil) distribution, compiles
an annotated kernel, launches it ten times across a virtual 4-GPU node and
checks the result against NumPy.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BlockWorkDist,
    Context,
    KernelCost,
    KernelDef,
    StencilDist,
    azure_nc24rsv2,
)
from repro.bench import scaled


def stencil_kernel(lc, n, output, input):
    """Average each element with its two neighbours (zero at the boundaries).

    ``lc`` provides the *global* thread indices of this superblock; ``input``
    and ``output`` are chunk-backed views indexed with global coordinates —
    the same programming model as the paper's modified CUDA kernel (Fig. 7).
    """
    i = lc.global_indices(0)
    i = i[i < n]
    left = input.gather(i - 1, fill=0.0)
    mid = input.gather(i)
    right = input.gather(i + 1, fill=0.0)
    output.scatter(i, (left + mid + right) / 3.0)


def main():
    # A single node with four (simulated) P100 GPUs — the paper's node type.
    # ``with`` synchronises on exit, so no launch is ever left pending in the
    # context's launch window at the end of the script.
    with Context(azure_nc24rsv2(nodes=1, gpus_per_node=4)) as ctx:
        run_stencil(ctx)


def run_stencil(ctx):
    n = scaled(1_000_000, floor=64_000)
    iterations = 10

    # Data distribution: 64 000-element chunks with a one-element halo,
    # round-robin across the GPUs (the host-code sample of Fig. 9).
    dist = StencilDist(chunk_size=64_000, halo=1)
    input_ = ctx.ones(n, dist, dtype="float32")
    output = ctx.zeros(n, dist, dtype="float32")

    stencil = (
        KernelDef("stencil", func=stencil_kernel)
        .param_value("n", "int32")
        .param_array("output", "float32")
        .param_array("input", "float32")
        .annotate("global i => read input[i-1:i+1], write output[i]")
        .with_cost(KernelCost(flops_per_thread=3, bytes_per_thread=16))
        .compile(ctx)
    )

    # Work distribution: superblocks of 64 000 threads.
    work = BlockWorkDist(64_000)
    for _ in range(iterations):
        stencil.launch(n, 256, work, (n, output, input_))
        input_, output = output, input_
    elapsed = ctx.synchronize()

    result = ctx.gather(input_)

    # NumPy reference.
    ref = np.ones(n, dtype=np.float32)
    for _ in range(iterations):
        padded = np.zeros(n + 2, dtype=np.float32)
        padded[1:-1] = ref
        ref = ((padded[:-2] + padded[1:-1] + padded[2:]) / 3.0).astype(np.float32)

    print(f"cluster          : {ctx.describe()}")
    print(f"virtual run time : {elapsed * 1e3:.3f} ms")
    print(f"kernel launches  : {ctx.stats().kernel_launches}")
    print(f"matches NumPy    : {np.allclose(result, ref, rtol=1e-5)}")


if __name__ == "__main__":
    main()
